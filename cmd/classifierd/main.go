// Command classifierd runs the lookup domain as a network daemon: the
// decision-control channel of the paper's system exposed over TCP. Rules
// can be pre-loaded from a ClassBench file and then updated remotely with
// the ctl protocol (INSERT/DELETE/LOOKUP/STATS/THROUGHPUT; try it with
// netcat).
//
// Usage:
//
//	classifierd -listen 127.0.0.1:9099 -rules acl10k.txt -lpm mbt
//	printf 'LOOKUP 10.0.0.1 8.8.8.8 999 80 6\n' | nc 127.0.0.1 9099
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/ctl"
	"repro/internal/lpm"
	"repro/internal/rule"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9099", "TCP listen address")
		rulesPath = flag.String("rules", "", "optional ClassBench ruleset to pre-load")
		lpmAlgo   = flag.String("lpm", "mbt", "LPM engine: mbt, bst or amtrie")
	)
	flag.Parse()

	cfg := core.Config{}
	switch strings.ToLower(*lpmAlgo) {
	case "mbt":
		cfg.LPM = core.LPMMultiBitTrie
	case "bst":
		cfg.LPM = core.LPMBinarySearchTree
	case "amtrie":
		cfg.LPM = core.LPMAMTrie
	default:
		fmt.Fprintf(os.Stderr, "classifierd: unknown LPM engine %q\n", *lpmAlgo)
		os.Exit(2)
	}

	var lens []uint8
	var tuples []core.Tuple[lpm.V4]
	if *rulesPath != "" {
		f, err := os.Open(*rulesPath)
		if err != nil {
			log.Fatalf("classifierd: %v", err)
		}
		set, err := rule.ParseSet(f)
		f.Close()
		if err != nil {
			log.Fatalf("classifierd: parse rules: %v", err)
		}
		lens = core.PrefixLens(set)
		tuples = core.CompileSet(set)
	}
	cls, err := core.NewConcurrent[lpm.V4](cfg, lens)
	if err != nil {
		log.Fatalf("classifierd: %v", err)
	}
	if len(tuples) > 0 {
		cost, err := cls.Build(tuples)
		if err != nil {
			log.Fatalf("classifierd: load rules: %v", err)
		}
		log.Printf("loaded %d rules in %d modeled cycles", len(tuples), cost.Cycles)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("classifierd: %v", err)
	}
	log.Printf("lookup domain (%s mode) listening on %s", cfg.LPM, l.Addr())
	srv := ctl.NewServer(cls)
	if err := srv.Serve(l); err != nil {
		log.Fatalf("classifierd: %v", err)
	}
}
