package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// startDaemon serves a fresh decomposition engine with a snapshot dir,
// returning its address.
func startDaemon(t *testing.T) (addr, snapDir string) {
	t.Helper()
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	srv.SnapshotDir = t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String(), srv.SnapshotDir
}

// cli runs one classifierctl invocation against addr and returns stdout.
func cli(t *testing.T, addr string, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(append([]string{"-addr", addr}, args...), &b); err != nil {
		t.Fatalf("classifierctl %v: %v", args, err)
	}
	return b.String()
}

func TestCLIFullCycle(t *testing.T) {
	addr, snapDir := startDaemon(t)

	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 40, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rulesPath := filepath.Join(t.TempDir(), "rules.txt")
	f, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteSet(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cli(t, addr, "create", "edge", "linear", "2")
	if out := cli(t, addr, "tables"); !strings.Contains(out, "edge") {
		t.Fatalf("tables output missing edge: %q", out)
	}
	cli(t, addr, "-table", "edge", "bulk", rulesPath)
	if out := cli(t, addr, "-table", "edge", "stats"); !strings.Contains(out, "rules 40") {
		t.Fatalf("stats after bulk: %q", out)
	}
	// Snapshot dump round-trips through the snapfile line format.
	dump := cli(t, addr, "-table", "edge", "snapshot")
	if got := len(strings.Split(strings.TrimSpace(dump), "\n")); got != 40 {
		t.Fatalf("snapshot dumped %d lines, want 40", got)
	}
	// Checkpoint, clobber, restore.
	cli(t, addr, "-table", "edge", "save", "cp")
	if _, err := os.Stat(filepath.Join(snapDir, "cp.snap")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	cli(t, addr, "-table", "edge", "reset")
	if out := cli(t, addr, "-table", "edge", "stats"); !strings.Contains(out, "rules 0") {
		t.Fatalf("stats after reset: %q", out)
	}
	if out := cli(t, addr, "-table", "edge", "restore", "cp"); !strings.Contains(out, "restored 40 rules") {
		t.Fatalf("restore: %q", out)
	}
	// Atomic swap from a file, then verify a lookup answers.
	cli(t, addr, "-table", "edge", "swap", rulesPath)
	out := cli(t, addr, "-table", "edge", "lookup", "0.0.0.1", "0.0.0.2", "3", "4", "6")
	if !strings.HasPrefix(out, "MATCH") && !strings.HasPrefix(out, "NOMATCH") {
		t.Fatalf("lookup output: %q", out)
	}
	cli(t, addr, "drop", "edge")
}

func TestCLIErrors(t *testing.T) {
	addr, _ := startDaemon(t)
	var b strings.Builder
	for _, args := range [][]string{
		{"-addr", addr},                             // no command
		{"-addr", addr, "frob"},                     // unknown command
		{"-addr", addr, "create", "x"},              // missing backend
		{"-addr", addr, "bulk", "/nonexistent"},     // unreadable file
		{"-addr", addr, "-table", "nope", "tables"}, // unknown table
		{"-addr", addr, "lookup", "1.2.3.4"},        // short header
		{"-addr", addr, "restore", "absent"},        // missing snapshot
	} {
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
