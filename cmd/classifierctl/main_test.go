package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// startDaemon serves a fresh decomposition engine with a snapshot dir,
// returning its address.
func startDaemon(t *testing.T) (addr, snapDir string) {
	t.Helper()
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	srv.SnapshotDir = t.TempDir()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String(), srv.SnapshotDir
}

// cli runs one classifierctl invocation against addr and returns stdout.
func cli(t *testing.T, addr string, args ...string) string {
	t.Helper()
	var b strings.Builder
	if err := run(append([]string{"-addr", addr}, args...), &b); err != nil {
		t.Fatalf("classifierctl %v: %v", args, err)
	}
	return b.String()
}

func TestCLIFullCycle(t *testing.T) {
	addr, snapDir := startDaemon(t)

	set, err := ruleset.Generate(ruleset.Config{Family: ruleset.ACL, Size: 40, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	rulesPath := filepath.Join(t.TempDir(), "rules.txt")
	f, err := os.Create(rulesPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := rule.WriteSet(f, set); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cli(t, addr, "create", "edge", "linear", "2")
	if out := cli(t, addr, "tables"); !strings.Contains(out, "edge") {
		t.Fatalf("tables output missing edge: %q", out)
	}
	cli(t, addr, "-table", "edge", "bulk", rulesPath)
	if out := cli(t, addr, "-table", "edge", "stats"); !strings.Contains(out, "rules 40") {
		t.Fatalf("stats after bulk: %q", out)
	}
	// Snapshot dump round-trips through the snapfile line format.
	dump := cli(t, addr, "-table", "edge", "snapshot")
	if got := len(strings.Split(strings.TrimSpace(dump), "\n")); got != 40 {
		t.Fatalf("snapshot dumped %d lines, want 40", got)
	}
	// Checkpoint, clobber, restore.
	cli(t, addr, "-table", "edge", "save", "cp")
	if _, err := os.Stat(filepath.Join(snapDir, "cp.snap")); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	cli(t, addr, "-table", "edge", "reset")
	if out := cli(t, addr, "-table", "edge", "stats"); !strings.Contains(out, "rules 0") {
		t.Fatalf("stats after reset: %q", out)
	}
	if out := cli(t, addr, "-table", "edge", "restore", "cp"); !strings.Contains(out, "restored 40 rules") {
		t.Fatalf("restore: %q", out)
	}
	// Atomic swap from a file, then verify a lookup answers.
	cli(t, addr, "-table", "edge", "swap", rulesPath)
	out := cli(t, addr, "-table", "edge", "lookup", "0.0.0.1", "0.0.0.2", "3", "4", "6")
	if !strings.HasPrefix(out, "MATCH") && !strings.HasPrefix(out, "NOMATCH") {
		t.Fatalf("lookup output: %q", out)
	}
	cli(t, addr, "drop", "edge")
}

// TestCLIStatefulTable drives the conntrack surface end to end through
// the CLI: create a stateful table, install an allow-established rule,
// establish a flow forward, verify the reverse direction is accepted by
// state alone, and read the state counters off the stats command.
func TestCLIStatefulTable(t *testing.T) {
	addr, _ := startDaemon(t)
	cli(t, addr, "create", "ct", "tss", "1", "0", "4096")
	cli(t, addr, "-table", "ct", "insert", "1", "1", "allow-established",
		"@10.0.0.0/8", "0.0.0.0/0", "0", ":", "65535", "443", ":", "443", "0x06/0xff")
	// Reverse first: nothing matches before establishment.
	if out := cli(t, addr, "-table", "ct", "lookup", "8.8.8.8", "10.0.0.1", "443", "1234", "6"); !strings.HasPrefix(out, "NOMATCH") {
		t.Fatalf("reverse before establishment: %q", out)
	}
	// Forward packet matches the establish rule and installs the flow.
	if out := cli(t, addr, "-table", "ct", "lookup", "10.0.0.1", "8.8.8.8", "1234", "443", "6"); !strings.Contains(out, "allow-established") {
		t.Fatalf("forward lookup: %q", out)
	}
	// Reverse is now accepted purely by flow state.
	if out := cli(t, addr, "-table", "ct", "lookup", "8.8.8.8", "10.0.0.1", "443", "1234", "6"); !strings.HasPrefix(out, "MATCH rule 1") {
		t.Fatalf("reverse after establishment: %q", out)
	}
	out := cli(t, addr, "-table", "ct", "stats")
	if !strings.Contains(out, "state installs 1 hits 1") {
		t.Fatalf("stats missing state counters: %q", out)
	}
	// The JSON record carries the same section.
	if out := cli(t, addr, "-table", "ct", "stats", "-json"); !strings.Contains(out, `"installs": 1`) {
		t.Fatalf("json stats missing state section: %q", out)
	}
	cli(t, addr, "drop", "ct")
}

func TestCLIErrors(t *testing.T) {
	addr, _ := startDaemon(t)
	var b strings.Builder
	for _, args := range [][]string{
		{"-addr", addr},                             // no command
		{"-addr", addr, "frob"},                     // unknown command
		{"-addr", addr, "create", "x"},              // missing backend
		{"-addr", addr, "bulk", "/nonexistent"},     // unreadable file
		{"-addr", addr, "-table", "nope", "tables"}, // unknown table
		{"-addr", addr, "lookup", "1.2.3.4"},        // short header
		{"-addr", addr, "restore", "absent"},        // missing snapshot
	} {
		if err := run(args, &b); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// startBareDaemon serves a daemon with no snapshot directory, so the
// file-backed snapshot commands fail.
func startBareDaemon(t *testing.T) string {
	t.Helper()
	eng, err := repro.New()
	if err != nil {
		t.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// cliErr runs one classifierctl invocation expecting failure, returning
// the error.
func cliErr(t *testing.T, args ...string) error {
	t.Helper()
	var b strings.Builder
	err := run(args, &b)
	if err == nil {
		t.Fatalf("classifierctl %v should fail; output: %q", args, b.String())
	}
	return err
}

// TestCLIConnectionRefused covers the dial error path: the daemon is
// gone before the CLI connects.
func TestCLIConnectionRefused(t *testing.T) {
	// Grab a port that nothing listens on: bind, read the address, close.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	err = cliErr(t, "-addr", addr, "tables")
	if !strings.Contains(err.Error(), "dial") {
		t.Fatalf("error %v does not surface the dial failure", err)
	}
}

// TestCLIMalformedSwapBody covers swap/bulk input files the rule parser
// rejects: the CLI must fail before (or while) talking to the daemon
// and the daemon must stay healthy for the next command.
func TestCLIMalformedSwapBody(t *testing.T) {
	addr, _ := startDaemon(t)
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("@not-a-rule this line is garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, cmd := range []string{"swap", "bulk"} {
		if err := cliErr(t, "-addr", addr, cmd, bad); err == nil {
			t.Fatalf("%s with malformed body should fail", cmd)
		}
	}
	// An empty file parses to zero rules: swap must atomically clear,
	// not error — the boundary between malformed and merely empty.
	empty := filepath.Join(t.TempDir(), "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if out := cli(t, addr, "swap", empty); !strings.Contains(out, "swapped in 0 rules") {
		t.Fatalf("empty swap: %q", out)
	}
	if out := cli(t, addr, "stats"); !strings.Contains(out, "rules 0") {
		t.Fatalf("stats after empty swap: %q", out)
	}
}

// TestCLIServerSideErrors covers errors the daemon reports back over
// the protocol rather than local parse failures.
func TestCLIServerSideErrors(t *testing.T) {
	addr, _ := startDaemon(t)
	cli(t, addr, "create", "dup", "linear")
	for _, args := range [][]string{
		{"create", "dup", "linear"},          // duplicate table
		{"create", "x", "nosuchbackend"},     // unknown backend
		{"create", "bad/name", "linear"},     // invalid table name
		{"drop", "absent"},                   // unknown table
		{"delete", "99"},                     // unknown rule id
		{"-table", "dup", "restore", "nope"}, // missing snapshot file
		{"save", "dup"},                      // checkpoint name collides with a table
		{"insert", "1", "1", "permit"},       // truncated rule line
		{"-table", "gone", "stats"},          // unknown table via -table
	} {
		cliErr(t, append([]string{"-addr", addr}, args...)...)
	}
	// The malformed commands must not have corrupted the registry.
	if out := cli(t, addr, "tables"); !strings.Contains(out, "dup") {
		t.Fatalf("tables after errors: %q", out)
	}
}

// TestCLIBadLocalArgs covers argument validation that fails before any
// connection state is consulted.
func TestCLIBadLocalArgs(t *testing.T) {
	addr, _ := startDaemon(t)
	for _, args := range [][]string{
		{"create", "x", "linear", "notanumber"},      // bad shard count
		{"create", "x", "linear", "2", "notanumber"}, // bad cache size
		{"create", "x", "linear", "2", "0", "nan"},   // bad state size
		{"delete", "notanumber"},
		{"lookup", "1.2.3.4", "5.6.7.8", "70000", "80", "6"}, // port overflow
		{"lookup", "1.2.3", "5.6.7.8", "1", "2", "3"},        // short address
		{"swap"},    // missing file
		{"save"},    // missing name
		{"restore"}, // missing name
		{"drop"},    // missing name
	} {
		cliErr(t, append([]string{"-addr", addr}, args...)...)
	}
}

// TestCLISaveWithoutSnapshotDir covers the save path against a daemon
// that has no snapshot directory configured.
func TestCLISaveWithoutSnapshotDir(t *testing.T) {
	addr := startBareDaemon(t)
	err := cliErr(t, "-addr", addr, "save", "cp")
	if !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("error %v does not mention the missing snapshot directory", err)
	}
}
