// Command classifierctl is the host-side control CLI for a running
// classifierd: one shot per invocation, speaking the ctl protocol
// through the same client library the tests and the CI e2e smoke use.
// It covers the table lifecycle, rule updates (single, pipelined bulk,
// atomic swap) and the snapshot subsystem (dump, save, restore, reset).
//
// Usage:
//
//	classifierctl -addr 127.0.0.1:9099 [-table name] <command> [args...]
//
//	tables [-json]                             list tables
//	create <name> <backend> [shards [cache [state]]]  create a table
//	drop <name>                                drop a table
//	insert <id> <prio> <action> @<rule>        insert one rule
//	bulk <classbench-file>                     pipeline a ruleset (BULK)
//	swap <classbench-file>                     atomically replace the ruleset (SWAP)
//	delete <id>                                delete one rule
//	lookup <src> <dst> <sport> <dport> <proto> classify one header
//	snapshot                                   dump the table's rules to stdout
//	save <name>                                checkpoint the table as <name>.snap
//	restore <name>                             atomically restore <name>.snap
//	reset                                      atomically clear the table
//	stats [-json]                              table statistics
//
// -table switches the connection's current table before the command
// runs, so every command operates on that table. With -json, tables and
// stats emit the same typed records the daemon's JSON admin API serves.
// For continuous scraping — operation rates, latency quantiles, shard
// balance — prefer the daemon's HTTP plane: start classifierd with
// -http and poll /metrics (Prometheus text) or /v1/tables/<name>/stats.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/rule"
	"repro/internal/snapfile"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "classifierctl: %v\n", err)
		os.Exit(1)
	}
}

// run executes one CLI invocation; split from main for testing.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classifierctl", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:9099", "classifierd address")
	table := fs.String("table", "", "table to operate on (default: the connection default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("missing command (tables, create, drop, insert, bulk, swap, delete, lookup, snapshot, save, restore, reset, stats)")
	}
	client, err := ctl.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()
	current := ctl.DefaultTable
	if *table != "" {
		if err := client.TableUse(*table); err != nil {
			return err
		}
		current = *table
	}
	return dispatch(client, current, fs.Arg(0), fs.Args()[1:], out)
}

// jsonFlag consumes a single optional -json argument.
func jsonFlag(cmd string, args []string) (bool, error) {
	switch {
	case len(args) == 0:
		return false, nil
	case len(args) == 1 && args[0] == "-json":
		return true, nil
	default:
		return false, fmt.Errorf("%s wants at most -json", cmd)
	}
}

func dispatch(client *ctl.Client, current, cmd string, args []string, out io.Writer) error {
	switch cmd {
	case "tables":
		asJSON, err := jsonFlag(cmd, args)
		if err != nil {
			return err
		}
		infos, err := client.Tables()
		if err != nil {
			return err
		}
		if asJSON {
			return writeJSON(out, infos)
		}
		for _, info := range infos {
			fmt.Fprintf(out, "%s\t%s\t%d shard(s)\t%d rule(s)\n",
				info.Name, info.Backend, info.Shards, info.Rules)
		}
		return nil

	case "create":
		if len(args) < 2 || len(args) > 5 {
			return fmt.Errorf("create wants <name> <backend> [shards [cache [state]]]")
		}
		shards, cache, state := 1, 0, 0
		var err error
		if len(args) >= 3 {
			if shards, err = strconv.Atoi(args[2]); err != nil {
				return fmt.Errorf("shards %q", args[2])
			}
		}
		if len(args) >= 4 {
			if cache, err = strconv.Atoi(args[3]); err != nil {
				return fmt.Errorf("cache %q", args[3])
			}
		}
		if len(args) == 5 {
			if state, err = strconv.Atoi(args[4]); err != nil {
				return fmt.Errorf("state %q", args[4])
			}
		}
		switch {
		case state > 0:
			err = client.TableCreateStateful(args[0], args[1], shards, cache, state)
		case cache > 0:
			err = client.TableCreateCached(args[0], args[1], shards, cache)
		default:
			err = client.TableCreate(args[0], args[1], shards)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "created %s\n", args[0])
		return nil

	case "drop":
		if len(args) != 1 {
			return fmt.Errorf("drop wants <name>")
		}
		if err := client.TableDrop(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(out, "dropped %s\n", args[0])
		return nil

	case "insert":
		r, err := snapfile.ParseRuleLine(strings.Join(args, " "))
		if err != nil {
			return err
		}
		cycles, err := client.Insert(r)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "inserted rule %d (%d cycles)\n", r.ID, cycles)
		return nil

	case "bulk", "swap":
		if len(args) != 1 {
			return fmt.Errorf("%s wants <classbench-file>", cmd)
		}
		set, err := loadRules(args[0])
		if err != nil {
			return err
		}
		if cmd == "bulk" {
			cycles, err := client.BulkInsert(set.Rules())
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "bulk-inserted %d rules (%d cycles)\n", set.Len(), cycles)
			return nil
		}
		cycles, err := client.Swap(set.Rules())
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "swapped in %d rules atomically (%d cycles)\n", set.Len(), cycles)
		return nil

	case "delete":
		if len(args) != 1 {
			return fmt.Errorf("delete wants <id>")
		}
		id, err := strconv.Atoi(args[0])
		if err != nil {
			return fmt.Errorf("rule id %q", args[0])
		}
		cycles, err := client.Delete(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "deleted rule %d (%d cycles)\n", id, cycles)
		return nil

	case "lookup":
		if len(args) != 5 {
			return fmt.Errorf("lookup wants <src> <dst> <sport> <dport> <proto>")
		}
		h, err := parseHeader(args)
		if err != nil {
			return err
		}
		res, err := client.Lookup(h)
		if err != nil {
			return err
		}
		if !res.Found {
			fmt.Fprintln(out, "NOMATCH")
			return nil
		}
		fmt.Fprintf(out, "MATCH rule %d priority %d action %s\n", res.RuleID, res.Priority, res.Action)
		return nil

	case "snapshot":
		rules, err := client.Snapshot()
		if err != nil {
			return err
		}
		for i := range rules {
			fmt.Fprintln(out, snapfile.FormatRule(rules[i]))
		}
		return nil

	case "save":
		if len(args) != 1 {
			return fmt.Errorf("save wants <name>")
		}
		n, err := client.SnapshotSave(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %d rules as %s.snap\n", n, args[0])
		return nil

	case "restore":
		if len(args) != 1 {
			return fmt.Errorf("restore wants <name>")
		}
		n, cycles, err := client.Restore(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "restored %d rules from %s.snap (%d cycles)\n", n, args[0], cycles)
		return nil

	case "reset":
		cycles, err := client.Reset()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "reset (%d cycles)\n", cycles)
		return nil

	case "stats":
		asJSON, err := jsonFlag(cmd, args)
		if err != nil {
			return err
		}
		st, err := client.TableStats()
		if err != nil {
			return err
		}
		if asJSON {
			// The STATS wire line carries no identity; graft it from the
			// table listing so the record matches the JSON admin API's.
			if infos, err := client.Tables(); err == nil {
				for _, info := range infos {
					if info.Name == current {
						st.Name, st.Backend, st.Shards = info.Name, info.Backend, info.Shards
						if st.Family = "v4"; info.Backend == "v6" {
							st.Family = "v6"
						}
						break
					}
				}
			}
			return writeJSON(out, st)
		}
		fmt.Fprintf(out, "rules %d probes %d ops %d maxlist %d overflows %d\n",
			st.Rules, st.Probes, st.ProbeOps, st.MaxListLen, st.HardwareOverflows)
		if st.Cache != nil {
			fmt.Fprintf(out, "cache hits %d misses %d evictions %d\n",
				st.Cache.Hits, st.Cache.Misses, st.Cache.Evictions)
		}
		if st.State != nil {
			fmt.Fprintf(out, "state installs %d hits %d expiries %d evictions %d\n",
				st.State.Installs, st.State.Hits, st.State.Expiries, st.State.Evictions)
		}
		fmt.Fprintf(out, "lookups %d updates %d swaps %d errors %d\n",
			st.Ops.Lookups, st.Ops.Updates, st.Ops.Swaps, st.Ops.Errors)
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// writeJSON emits one indented JSON document, like the admin API.
func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// loadRules reads a ClassBench ruleset file; IDs and priorities come
// from line order, like classifierd's -rules pre-load.
func loadRules(path string) (*repro.RuleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return repro.ParseRules(f)
}

// parseHeader decodes the lookup command's five fields.
func parseHeader(args []string) (rule.Header, error) {
	src, err := parseAddr(args[0])
	if err != nil {
		return rule.Header{}, err
	}
	dst, err := parseAddr(args[1])
	if err != nil {
		return rule.Header{}, err
	}
	sp, err := strconv.ParseUint(args[2], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("source port %q", args[2])
	}
	dp, err := strconv.ParseUint(args[3], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("destination port %q", args[3])
	}
	pr, err := strconv.ParseUint(args[4], 10, 8)
	if err != nil {
		return rule.Header{}, fmt.Errorf("protocol %q", args[4])
	}
	return rule.Header{SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr)}, nil
}

func parseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q", s)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}
