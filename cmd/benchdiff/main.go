// Command benchdiff compares two benchmark artifacts — BENCH_lookup.json
// (cmd/lookupbench -engines) or BENCH_workload.json (cmd/loadgen) — and
// fails when any measured lookup path regressed beyond a threshold. CI
// runs it against the previous successful run's artifact, so a change
// that slows a lookup path down by more than the noise band fails the
// build instead of silently eroding the Mlookups/s trajectory.
//
// Usage:
//
//	benchdiff -old prev/BENCH_lookup.json -new BENCH_lookup.json -max-regress 15 -max-hitrate-drop 5
//	benchdiff -old prev/BENCH_workload.json -new BENCH_workload.json -max-latency-regress 50
//
// Records are matched on their full identity (experiment, backend,
// family, rules, trace length, parallelism, batch, shards, zipf skew,
// cache size, flow-state size — plus model, workers and event count for
// workload records), so the Zipf-skewed cached-vs-uncached records are gated
// exactly like the plain engine records: a regression on the
// flow-cache hit path fails the build the same as one on the engine
// path. Flow-cached records are additionally gated on the measured
// cache hit rate — a drop of more than -max-hitrate-drop percentage
// points fails even when the ns/lookup noise band hides it, since a
// degraded hit rate is a cached-path regression by definition. Stateful
// records (state_entries > 0, from lookupbench -fwstate or loadgen
// -model conntrack) are gated on their flow-state hit rate the same
// way.
// Workload-replay records are gated on their lookup latency quantiles
// (p50 and p99) against the looser -max-latency-regress threshold:
// open-loop tail latency on shared CI runners is far noisier than
// steady-state ns/lookup, so the two bands are tuned independently.
// Records present on only one side — a new backend, a renamed
// experiment, an errored run — are reported and skipped.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
)

// Record mirrors the identity and measurement fields of lookupbench's
// BenchRecord and loadgen's workload Record; unknown fields are ignored
// so the schemas can evolve independently. A record carries ns_per_lookup
// (steady-state benchmarks), lookup latency quantiles (workload
// replays), or both; each present measurement is gated independently.
type Record struct {
	Experiment   string  `json:"experiment"`
	Backend      string  `json:"backend"`
	Family       string  `json:"family"`
	Rules        int     `json:"rules"`
	TraceLen     int     `json:"trace_len"`
	Parallel     int     `json:"parallel"`
	Batch        int     `json:"batch"`
	Shards       int     `json:"shards"`
	Zipf         float64 `json:"zipf,omitempty"`
	CacheEntries int     `json:"cache_entries,omitempty"`
	StateEntries int     `json:"state_entries,omitempty"`
	Model        string  `json:"model,omitempty"`
	Workers      int     `json:"workers,omitempty"`
	Events       int     `json:"events,omitempty"`
	NsPerLookup  float64 `json:"ns_per_lookup"`
	LookupP50Ns  float64 `json:"lookup_p50_ns,omitempty"`
	LookupP99Ns  float64 `json:"lookup_p99_ns,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	StateHitRate float64 `json:"state_hit_rate,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// key is the record identity both artifacts must share for a
// comparison to be meaningful.
func (r Record) key() string {
	return fmt.Sprintf("%s|%s|%s|%d|%d|p%d|b%d|s%d|z%g|c%d|f%d|m%s|w%d|e%d",
		r.Experiment, r.Backend, r.Family, r.Rules, r.TraceLen,
		r.Parallel, r.Batch, r.Shards, r.Zipf, r.CacheEntries,
		r.StateEntries, r.Model, r.Workers, r.Events)
}

// measured reports whether the record carries any gateable measurement.
func (r Record) measured() bool {
	return r.Error == "" && (r.NsPerLookup > 0 || r.LookupP99Ns > 0)
}

// Regression is one record pair that degraded beyond a threshold:
// Metric names what regressed ("ns/lookup", or "hit-rate" for the
// flow-cached records' hit-rate floor).
type Regression struct {
	Key      string
	Metric   string
	Old, New float64 // ns/lookup, or hit-rate in percent
	Pct      float64 // relative slowdown in percent (ns), or points dropped (hit-rate)
}

// compare pairs the artifacts by record identity and returns the
// degradations beyond the thresholds plus a human-readable comparison
// log: ns/lookup beyond maxRegressPct, workload lookup quantiles (p50,
// p99) beyond maxLatencyPct, and — for flow-cached records carrying a
// measured hit rate on both sides — a hit-rate drop beyond
// maxHitDropPts percentage points. Each metric gates only when both
// sides measured it, so mixed-schema artifacts compare cleanly.
func compare(old, cur []Record, maxRegressPct, maxHitDropPts, maxLatencyPct float64) (regs []Regression, log []string) {
	prev := map[string]Record{}
	for _, r := range old {
		if r.measured() {
			prev[r.key()] = r
		}
	}
	for _, r := range cur {
		if !r.measured() {
			continue
		}
		k := r.key()
		p, ok := prev[k]
		if !ok {
			log = append(log, fmt.Sprintf("new    %-60s %8.0f ns (no baseline)", k, primaryNs(r)))
			continue
		}
		delete(prev, k)
		gate := func(metric string, oldNs, newNs, maxPct float64) {
			if oldNs <= 0 || newNs <= 0 {
				return
			}
			pct := 100 * (newNs - oldNs) / oldNs
			verdict := "ok    "
			if pct > maxPct {
				verdict = "REGRES"
				regs = append(regs, Regression{Key: k, Metric: metric, Old: oldNs, New: newNs, Pct: pct})
			}
			log = append(log, fmt.Sprintf("%s %-60s %-10s %8.0f -> %8.0f ns (%+.1f%%)",
				verdict, k, metric, oldNs, newNs, pct))
		}
		gate("ns/lookup", p.NsPerLookup, r.NsPerLookup, maxRegressPct)
		gate("lookup-p50", p.LookupP50Ns, r.LookupP50Ns, maxLatencyPct)
		gate("lookup-p99", p.LookupP99Ns, r.LookupP99Ns, maxLatencyPct)
		// The gate needs a measured baseline rate; on the current side
		// a cached record (CacheEntries > 0) always carries its
		// measurement — lookupbench serializes cache_hit_rate without
		// omitempty exactly so that a total collapse to 0% is a
		// reportable drop, not an absent field.
		if r.CacheEntries > 0 && p.CacheHitRate > 0 {
			drop := 100 * (p.CacheHitRate - r.CacheHitRate)
			if drop > maxHitDropPts {
				regs = append(regs, Regression{Key: k, Metric: "hit-rate",
					Old: 100 * p.CacheHitRate, New: 100 * r.CacheHitRate, Pct: drop})
				log = append(log, fmt.Sprintf("REGRES %-60s hit rate %5.1f%% -> %5.1f%% (-%.1f pts)",
					k, 100*p.CacheHitRate, 100*r.CacheHitRate, drop))
			}
		}
		// The flow-state hit rate gates under the same contract as the
		// cache hit rate: stateful records (StateEntries > 0) serialize
		// state_hit_rate without omitempty, so a collapse to 0% on the
		// current side is a reportable drop against a measured baseline.
		if r.StateEntries > 0 && p.StateHitRate > 0 {
			drop := 100 * (p.StateHitRate - r.StateHitRate)
			if drop > maxHitDropPts {
				regs = append(regs, Regression{Key: k, Metric: "state-hit-rate",
					Old: 100 * p.StateHitRate, New: 100 * r.StateHitRate, Pct: drop})
				log = append(log, fmt.Sprintf("REGRES %-60s state hit rate %5.1f%% -> %5.1f%% (-%.1f pts)",
					k, 100*p.StateHitRate, 100*r.StateHitRate, drop))
			}
		}
	}
	for k := range prev {
		log = append(log, fmt.Sprintf("gone   %-60s (baseline only)", k))
	}
	sort.Strings(log)
	return regs, log
}

// primaryNs picks the record's headline measurement for log lines.
func primaryNs(r Record) float64 {
	if r.NsPerLookup > 0 {
		return r.NsPerLookup
	}
	return r.LookupP99Ns
}

func load(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%s: artifact is empty (truncated upload?)", path)
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: not a benchmark artifact: %w", path, err)
	}
	return recs, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its dependencies injected: exit code 0 means no
// regression (or a tolerated missing baseline), 1 means regressions,
// 2 means the invocation or an artifact was unusable.
func run(args []string, stdout, stderr io.Writer) int {
	flags := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	flags.SetOutput(stderr)
	var (
		oldPath   = flags.String("old", "", "baseline artifact (previous run's BENCH_lookup.json or BENCH_workload.json)")
		newPath   = flags.String("new", "BENCH_lookup.json", "current artifact")
		maxPct    = flags.Float64("max-regress", 15, "fail when ns/lookup regresses more than this percentage")
		maxDrop   = flags.Float64("max-hitrate-drop", 5, "fail when a flow-cached record's hit rate drops more than this many percentage points")
		maxLat    = flags.Float64("max-latency-regress", 50, "fail when a workload record's lookup p50/p99 regresses more than this percentage")
		missingOK = flags.Bool("missing-old-ok", false, "exit 0 when the baseline artifact does not exist (first run of a new schema); a present-but-corrupt baseline still fails")
	)
	if err := flags.Parse(args); err != nil {
		return 2
	}
	if *oldPath == "" {
		fmt.Fprintln(stderr, "benchdiff: -old is required")
		return 2
	}
	old, err := load(*oldPath)
	if err != nil {
		if *missingOK && errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(stdout, "benchdiff: no baseline at %s; skipping comparison (first run of this artifact)\n", *oldPath)
			return 0
		}
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	cur, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	regs, log := compare(old, cur, *maxPct, *maxDrop, *maxLat)
	for _, line := range log {
		fmt.Fprintln(stdout, line)
	}
	if len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d lookup-path regression(s):\n", len(regs))
		for _, r := range regs {
			if r.Metric == "hit-rate" {
				fmt.Fprintf(stderr, "  %s: cache hit rate %.1f%% -> %.1f%% (-%.1f pts)\n", r.Key, r.Old, r.New, r.Pct)
				continue
			}
			if r.Metric == "state-hit-rate" {
				fmt.Fprintf(stderr, "  %s: state hit rate %.1f%% -> %.1f%% (-%.1f pts)\n", r.Key, r.Old, r.New, r.Pct)
				continue
			}
			fmt.Fprintf(stderr, "  %s: %.0f -> %.0f ns %s (%+.1f%%)\n", r.Key, r.Old, r.New, r.Metric, r.Pct)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: no regression beyond %.0f%% ns, %.0f%% latency or %.0f hit-rate points across %d comparable records\n",
		*maxPct, *maxLat, *maxDrop, len(cur))
	return 0
}
