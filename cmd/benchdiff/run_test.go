package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const cleanArtifact = `[
  {"experiment":"engines","backend":"linear","family":"acl","rules":100,
   "trace_len":1000,"parallel":1,"batch":1,"shards":1,"ns_per_lookup":100}
]`

func writeArtifact(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runDiff runs the CLI entry point with captured output.
func runDiff(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunMissingBaselineFailsByDefault(t *testing.T) {
	dir := t.TempDir()
	cur := writeArtifact(t, dir, "new.json", cleanArtifact)
	code, _, stderr := runDiff(t, "-old", filepath.Join(dir, "absent.json"), "-new", cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "absent.json") {
		t.Errorf("stderr should name the missing artifact, got: %s", stderr)
	}
}

func TestRunMissingBaselineToleratedWithFlag(t *testing.T) {
	dir := t.TempDir()
	cur := writeArtifact(t, dir, "new.json", cleanArtifact)
	code, stdout, stderr := runDiff(t,
		"-missing-old-ok", "-old", filepath.Join(dir, "absent.json"), "-new", cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "skipping comparison") {
		t.Errorf("stdout should explain the skip, got: %s", stdout)
	}
}

func TestRunTruncatedBaselineFailsEvenWithFlag(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", "")
	cur := writeArtifact(t, dir, "new.json", cleanArtifact)
	code, _, stderr := runDiff(t, "-missing-old-ok", "-old", old, "-new", cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (an empty artifact is corruption, not a first run); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "empty") {
		t.Errorf("stderr should call out the empty artifact, got: %s", stderr)
	}
}

func TestRunCorruptBaselineFailsWithClearMessage(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", `[{"experiment":"engines","ns_per_look`) // cut mid-record
	cur := writeArtifact(t, dir, "new.json", cleanArtifact)
	code, _, stderr := runDiff(t, "-missing-old-ok", "-old", old, "-new", cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "not a benchmark artifact") {
		t.Errorf("stderr should explain the parse failure, got: %s", stderr)
	}
}

func TestRunCorruptCurrentArtifactFails(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", cleanArtifact)
	cur := writeArtifact(t, dir, "new.json", `{"not":"an array"}`)
	code, _, stderr := runDiff(t, "-old", old, "-new", cur)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "new.json") {
		t.Errorf("stderr should name the bad artifact, got: %s", stderr)
	}
}

func TestRunCleanComparisonPasses(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", cleanArtifact)
	cur := writeArtifact(t, dir, "new.json", cleanArtifact)
	code, stdout, stderr := runDiff(t, "-old", old, "-new", cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "no regression") {
		t.Errorf("stdout should report the clean verdict, got: %s", stdout)
	}
}

func TestRunRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", cleanArtifact)
	cur := writeArtifact(t, dir, "new.json",
		strings.Replace(cleanArtifact, `"ns_per_lookup":100`, `"ns_per_lookup":200`, 1))
	code, _, stderr := runDiff(t, "-old", old, "-new", cur)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "regression") {
		t.Errorf("stderr should report the regression, got: %s", stderr)
	}
}

// TestRunSchemaDriftPasses: the first CI run after a schema change sees
// records whose identities exist on only one side — reported, not fatal.
func TestRunSchemaDriftPasses(t *testing.T) {
	dir := t.TempDir()
	old := writeArtifact(t, dir, "old.json", cleanArtifact)
	cur := writeArtifact(t, dir, "new.json",
		strings.Replace(cleanArtifact, `"backend":"linear"`, `"backend":"decomposed"`, 1))
	code, stdout, stderr := runDiff(t, "-old", old, "-new", cur)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "no baseline") {
		t.Errorf("stdout should log the unmatched record, got: %s", stdout)
	}
}

func TestRunOldFlagRequired(t *testing.T) {
	code, _, stderr := runDiff(t)
	if code != 2 {
		t.Fatalf("exit = %d, want 2; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-old is required") {
		t.Errorf("stderr should demand -old, got: %s", stderr)
	}
}
