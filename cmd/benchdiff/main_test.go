package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func rec(backend string, shards int, ns float64) Record {
	return Record{
		Experiment: "engine_parallel_lookup", Backend: backend, Family: "acl",
		Rules: 1000, TraceLen: 5000, Parallel: 4, Batch: 64, Shards: shards,
		NsPerLookup: ns,
	}
}

func TestCompareFlagsOnlyRealRegressions(t *testing.T) {
	old := []Record{
		rec("Decomposition", 1, 100),
		rec("Decomposition", 4, 50),
		rec("TSS", 1, 1000),
		rec("Linear", 1, 2000),
		{Experiment: "engine_parallel_lookup", Backend: "RFC", Family: "acl",
			Rules: 1000, TraceLen: 5000, Parallel: 4, Batch: 64, Shards: 1, Error: "boom"},
	}
	cur := []Record{
		rec("Decomposition", 1, 110), // +10%: inside the 15% band
		rec("Decomposition", 4, 60),  // +20%: regression
		rec("TSS", 1, 800),           // improvement
		rec("HiCuts", 1, 300),        // new record, no baseline
		rec("RFC", 1, 40),            // baseline errored: counts as new
	}
	regs, log := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the +20%% one", regs)
	}
	if r := regs[0]; r.Old != 50 || r.New != 60 {
		t.Errorf("wrong pair flagged: %+v", r)
	}
	if len(log) == 0 {
		t.Error("no comparison log")
	}
	// The Linear baseline has no current record: reported, not fatal.
	found := false
	for _, line := range log {
		if len(line) >= 4 && line[:4] == "gone" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing 'gone' line in %v", log)
	}
}

func TestCompareDistinguishesIdentity(t *testing.T) {
	// Same backend at different shard counts or cache sizes must never
	// be compared against each other.
	old := []Record{rec("Decomposition", 1, 100)}
	cur := []Record{rec("Decomposition", 4, 1000)}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 0 {
		t.Fatalf("cross-identity comparison: %+v", regs)
	}
	oldZ := rec("Decomposition", 1, 100)
	oldZ.Zipf, oldZ.CacheEntries = 1.2, 65536
	curZ := rec("Decomposition", 1, 500)
	if regs, _ := compare([]Record{oldZ}, []Record{curZ}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("zipf/cache identity ignored: %+v", regs)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	recs := []Record{rec("Decomposition", 1, 123.4)}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].NsPerLookup != 123.4 {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
}

// zrec builds one Zipf-experiment record, the cached-path shape the
// regression gate must cover (cacheEntries == 0 is the uncached twin).
func zrec(backend string, shards, cacheEntries int, ns, hitRate float64) Record {
	return Record{
		Experiment: "engine_zipf_lookup", Backend: backend, Family: "acl",
		Rules: 1000, TraceLen: 5000, Parallel: 4, Batch: 64, Shards: shards,
		Zipf: 1.2, CacheEntries: cacheEntries, NsPerLookup: ns, CacheHitRate: hitRate,
	}
}

func TestCompareGatesCachedPath(t *testing.T) {
	old := []Record{
		zrec("Decomposition", 1, 0, 1300, 0),
		zrec("Decomposition", 1, 65536, 150, 0.98),
		zrec("TSS", 1, 65536, 200, 0.97),
	}
	// The cached decomposition record regresses 2x while its uncached
	// twin is stable: the gate must flag exactly the cached record.
	cur := []Record{
		zrec("Decomposition", 1, 0, 1320, 0),
		zrec("Decomposition", 1, 65536, 300, 0.98),
		zrec("TSS", 1, 65536, 205, 0.97),
	}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the cached-path one", regs)
	}
	if r := regs[0]; r.Metric != "ns/lookup" || r.Old != 150 || r.New != 300 {
		t.Errorf("wrong record flagged: %+v", r)
	}
}

func TestCompareGatesHitRateDrop(t *testing.T) {
	old := []Record{zrec("Decomposition", 1, 65536, 150, 0.98)}
	// ns/lookup inside the noise band, but the hit rate collapsed: a
	// cached-path regression by definition, and it must fail the build.
	cur := []Record{zrec("Decomposition", 1, 65536, 160, 0.80)}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want the hit-rate drop", regs)
	}
	if r := regs[0]; r.Metric != "hit-rate" || r.Pct < 17 || r.Pct > 19 {
		t.Errorf("hit-rate regression = %+v", r)
	}
	// A small wobble inside the threshold passes.
	cur = []Record{zrec("Decomposition", 1, 65536, 160, 0.95)}
	if regs, _ := compare(old, cur, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("hit-rate wobble flagged: %+v", regs)
	}
	// Uncached records (no hit rate) are never hit-rate gated.
	oldU := []Record{zrec("Linear", 1, 0, 500, 0)}
	curU := []Record{zrec("Linear", 1, 0, 510, 0)}
	if regs, _ := compare(oldU, curU, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("uncached record hit-rate gated: %+v", regs)
	}
}

func TestCompareCatchesTotalHitRateCollapse(t *testing.T) {
	// A cached record whose hit rate collapses to exactly 0% — the
	// worst cached-path regression — must be flagged even though the
	// zero value looks like "absent" (lookupbench serializes
	// cache_hit_rate without omitempty for exactly this case).
	old := []Record{zrec("Decomposition", 1, 65536, 150, 0.98)}
	cur := []Record{zrec("Decomposition", 1, 65536, 155, 0)}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 || regs[0].Metric != "hit-rate" {
		t.Fatalf("total hit-rate collapse not flagged: %+v", regs)
	}
	// A baseline without a measured rate (uncached or pre-measurement
	// artifact) never gates.
	oldNoRate := []Record{zrec("Decomposition", 1, 65536, 150, 0)}
	if regs, _ := compare(oldNoRate, cur, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("baseline without hit rate gated: %+v", regs)
	}
}

// srec builds one flow-state experiment record, the stateful-path shape
// from lookupbench -fwstate (stateEntries == 0 is the stateless twin).
func srec(backend string, stateEntries int, ns, hitRate float64) Record {
	return Record{
		Experiment: "engine_state_lookup", Backend: backend, Family: "acl",
		Rules: 1000, TraceLen: 5000, Parallel: 4, Batch: 64, Shards: 1,
		StateEntries: stateEntries, NsPerLookup: ns, StateHitRate: hitRate,
	}
}

func TestCompareGatesStateHitRate(t *testing.T) {
	// Stateful and stateless twins are distinct identities.
	old := []Record{srec("TSS", 65536, 150, 0.95)}
	cur := []Record{srec("TSS", 0, 900, 0)}
	if regs, _ := compare(old, cur, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("state identity ignored: %+v", regs)
	}
	// ns/lookup inside the noise band, but the flow-state hit rate
	// collapsed: the stateful path stopped serving established traffic
	// and the build must go red.
	cur = []Record{srec("TSS", 65536, 160, 0.40)}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 || regs[0].Metric != "state-hit-rate" {
		t.Fatalf("state hit-rate drop not flagged: %+v", regs)
	}
	// Total collapse to exactly 0% still gates (state_hit_rate is
	// serialized without omitempty on stateful records).
	cur = []Record{srec("TSS", 65536, 160, 0)}
	if regs, _ := compare(old, cur, 15, 5, 50); len(regs) != 1 {
		t.Fatalf("total state hit-rate collapse not flagged: %+v", regs)
	}
	// A wobble inside the threshold passes, and a baseline without a
	// measured rate never gates.
	cur = []Record{srec("TSS", 65536, 155, 0.93)}
	if regs, _ := compare(old, cur, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("state hit-rate wobble flagged: %+v", regs)
	}
	oldNoRate := []Record{srec("TSS", 65536, 150, 0)}
	cur = []Record{srec("TSS", 65536, 155, 0)}
	if regs, _ := compare(oldNoRate, cur, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("baseline without state hit rate gated: %+v", regs)
	}
}

// wrec builds one workload-replay record, the BENCH_workload.json shape
// cmd/loadgen emits.
func wrec(model string, workers int, p50, p99 float64) Record {
	return Record{
		Experiment: "workload_replay", Backend: "Decomposition", Family: "acl",
		Rules: 1000, Events: 10000, Workers: workers, Batch: 16, Shards: 1,
		Model: model, Zipf: 1.2, LookupP50Ns: p50, LookupP99Ns: p99,
	}
}

func TestCompareGatesWorkloadLatency(t *testing.T) {
	old := []Record{
		wrec("zipf", 4, 1000, 20000),
		wrec("shift", 4, 1200, 25000),
		wrec("bursty", 4, 1500, 40000),
	}
	cur := []Record{
		wrec("zipf", 4, 1100, 26000),   // +10% / +30%: inside the 50% band
		wrec("shift", 4, 2400, 26000),  // p50 doubled: regression
		wrec("bursty", 4, 1500, 90000), // p99 more than doubled: regression
	}
	regs, log := compare(old, cur, 15, 5, 50)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want the p50 and p99 ones", regs)
	}
	metrics := map[string]bool{}
	for _, r := range regs {
		metrics[r.Metric] = true
	}
	if !metrics["lookup-p50"] || !metrics["lookup-p99"] {
		t.Fatalf("wrong metrics flagged: %+v", regs)
	}
	if len(log) == 0 {
		t.Error("no comparison log")
	}
}

func TestCompareWorkloadIdentity(t *testing.T) {
	// Different models or worker counts are different experiments.
	if regs, _ := compare([]Record{wrec("zipf", 4, 1000, 20000)},
		[]Record{wrec("shift", 4, 9000, 90000)}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("cross-model comparison: %+v", regs)
	}
	if regs, _ := compare([]Record{wrec("zipf", 4, 1000, 20000)},
		[]Record{wrec("zipf", 8, 9000, 90000)}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("cross-worker comparison: %+v", regs)
	}
	// The steady-state ns gate never fires on workload records (no
	// ns_per_lookup), and the latency gate never fires on lookupbench
	// records (no quantiles) — mixed artifacts compare cleanly.
	mixed := []Record{rec("Decomposition", 1, 100), wrec("zipf", 4, 1000, 20000)}
	if regs, _ := compare(mixed, mixed, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("self-comparison flagged: %+v", regs)
	}
}

func TestCompareWorkloadErrorRecordsSkipped(t *testing.T) {
	bad := wrec("zipf", 4, 1000, 20000)
	bad.Error = "lookup: boom"
	if regs, _ := compare([]Record{wrec("zipf", 4, 1000, 20000)},
		[]Record{bad}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("errored record gated: %+v", regs)
	}
	zero := wrec("zipf", 4, 0, 0)
	if regs, _ := compare([]Record{wrec("zipf", 4, 1000, 20000)},
		[]Record{zero}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("unmeasured record gated: %+v", regs)
	}
}

// brec builds one stage-fused burst-sweep record; the burst size rides
// in the batch identity field, so each point on the burst curve is its
// own gated comparison.
func brec(burst int, ns float64) Record {
	return Record{
		Experiment: "engine_burst_lookup", Backend: "Decomposition", Family: "acl",
		Rules: 10000, TraceLen: 4096, Parallel: 4, Batch: burst, Shards: 1,
		NsPerLookup: ns,
	}
}

func TestCompareGatesBurstSweep(t *testing.T) {
	old := []Record{brec(1, 1500), brec(16, 1400), brec(64, 900), brec(256, 880)}
	cur := []Record{brec(1, 1550), brec(16, 1450), brec(64, 1200), brec(256, 890)}
	regs, _ := compare(old, cur, 15, 5, 50)
	if len(regs) != 1 {
		t.Fatalf("regressions = %+v, want exactly the burst-64 one", regs)
	}
	if r := regs[0]; r.Old != 900 || r.New != 1200 {
		t.Errorf("wrong burst point flagged: %+v", r)
	}
	// Different burst sizes are distinct identities: the burst-1 baseline
	// must never gate the burst-64 measurement, and the burst records
	// must never collide with the engine_parallel_lookup records that
	// share backend/rules/trace identity.
	if regs, _ := compare([]Record{brec(1, 1500)}, []Record{brec(64, 900)}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("cross-burst comparison: %+v", regs)
	}
	par := rec("Decomposition", 1, 100)
	par.Rules, par.TraceLen = 10000, 4096
	if regs, _ := compare([]Record{par}, []Record{brec(64, 900)}, 15, 5, 50); len(regs) != 0 {
		t.Fatalf("cross-experiment comparison: %+v", regs)
	}
}
