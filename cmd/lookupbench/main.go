// Command lookupbench regenerates the paper's evaluation: Table I
// (multi-dimensional algorithm comparison), Table II (single-field engine
// comparison), Fig. 3 (ruleset update time in clock cycles), Fig. 4
// (lookup time vs packet-header-set size) and the Section IV.D throughput
// figures.
//
// Usage:
//
//	lookupbench -all
//	lookupbench -table1 -sizes 1000,10000
//	lookupbench -fig3 -fig4 -throughput
//	lookupbench -engines -parallel 8 -batch 64 -shards 1,4 -json BENCH_lookup.json
//	lookupbench -engines -zipf 1.2 -flowcache 65536
//	lookupbench -engines -burst 1,16,64,256
//	lookupbench -engines -fwstate 65536
//
// The -engines experiment drives every backend through the public Engine
// API with parallel batched lookups (concurrent goroutines sharing one
// engine, exercising the RCU read path) at each -shards replica count,
// so the emitted records compare the sharded serving path against the
// unsharded baseline. With -zipf s > 1 it additionally replays a
// Zipf-skewed trace (flow popularity drawn from a Zipf(s) distribution,
// the shape of real traffic) against each backend twice — once bare and
// once behind repro.WithFlowCache(-flowcache slots) — emitting
// cached-vs-uncached records with the measured cache hit rate. With
// -burst it additionally sweeps the decomposition backend's stage-fused
// vector kernel across the given burst sizes through the
// allocation-free LookupBatchInto entry point, emitting
// engine_burst_lookup records so the burst-size curve is part of the
// tracked trajectory. With -fwstate it additionally replays a
// bidirectional trace (every header followed by its reverse) against an
// establishing ruleset on each backend twice — stateless and behind
// repro.WithFlowState(-fwstate slots) — emitting engine_state_lookup
// records with the measured flow-state hit rate, the conntrack scenario
// where reverse packets are admitted by installed flow entries instead
// of the classifier.
//
// The -raw experiment drives the zero-allocation raw-frame ingress
// path: synthesized Ethernet frames stream through LookupBytesBatch on
// every backend at each -shards count, plus the split-64 IPv6 engine on
// the embedded ruleset (family "acl-v6"), emitting engine_raw_lookup
// records alongside the -engines ones.
// Machine-readable records go to the -json file — one file per run;
// archive the files across revisions (CI uploads the file as an
// artifact) to record the performance trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	repro "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/lpm"
	"repro/internal/packet"
	"repro/internal/rangematch"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

func main() {
	var (
		table1     = flag.Bool("table1", false, "run the Table I comparison")
		table2     = flag.Bool("table2", false, "run the Table II single-field comparison")
		fig3       = flag.Bool("fig3", false, "run the Fig. 3 update-time experiment")
		fig4       = flag.Bool("fig4", false, "run the Fig. 4 lookup-time experiment")
		throughput = flag.Bool("throughput", false, "run the Section IV.D throughput experiment")
		engines    = flag.Bool("engines", false, "run the Engine API parallel-lookup benchmark")
		raw        = flag.Bool("raw", false, "run the raw-frame LookupBytesBatch benchmark (IPv4 and IPv6)")
		all        = flag.Bool("all", false, "run everything")
		sizesFlag  = flag.String("sizes", "1000,5000,10000", "comma-separated ruleset sizes")
		traceN     = flag.Int("trace", 20000, "packet header set size for lookup experiments")
		seed       = flag.Int64("seed", 1, "generation seed")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "concurrent lookup goroutines for -engines")
		batch      = flag.Int("batch", 64, "LookupBatch size for -engines (1 = single-lookup path)")
		shardsFlag = flag.String("shards", "1,4", "comma-separated shard counts for -engines (1 = unsharded)")
		burstFlag  = flag.String("burst", "", "comma-separated burst sizes for the -engines stage-fused sweep ('' disables)")
		zipfS      = flag.Float64("zipf", 1.2, "Zipf skew s for the -engines flow-cache experiment (> 1; 0 disables)")
		cacheSize  = flag.Int("flowcache", 1<<16, "flow-cache slots for the -zipf experiment")
		stateSize  = flag.Int("fwstate", 0, "flow-state slots for the -engines stateful experiment (0 disables)")
		jsonOut    = flag.String("json", "BENCH_lookup.json", "machine-readable output file for -engines ('' disables)")
	)
	flag.Parse()
	if *all {
		*table1, *table2, *fig3, *fig4, *throughput, *engines, *raw = true, true, true, true, true, true, true
	}
	if !*table1 && !*table2 && !*fig3 && !*fig4 && !*throughput && !*engines && !*raw {
		flag.Usage()
		os.Exit(2)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lookupbench:", err)
		os.Exit(2)
	}
	if *parallel < 1 {
		*parallel = 1
	}
	if *batch < 1 {
		*batch = 1
	}
	shardCounts, err := parseSizes(*shardsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lookupbench: -shards:", err)
		os.Exit(2)
	}
	var burstSizes []int
	if *burstFlag != "" {
		burstSizes, err = parseSizes(*burstFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lookupbench: -burst:", err)
			os.Exit(2)
		}
	}
	if *zipfS != 0 && *zipfS <= 1 {
		fmt.Fprintln(os.Stderr, "lookupbench: -zipf wants s > 1 (or 0 to disable)")
		os.Exit(2)
	}
	if *zipfS > 1 && *cacheSize <= 0 {
		fmt.Fprintln(os.Stderr, "lookupbench: -flowcache wants a positive slot count for the -zipf experiment")
		os.Exit(2)
	}
	if *stateSize < 0 {
		fmt.Fprintln(os.Stderr, "lookupbench: -fwstate wants a non-negative slot count")
		os.Exit(2)
	}
	r := runner{
		sizes: sizes, traceN: *traceN, seed: *seed,
		parallel: *parallel, batch: *batch, shards: shardCounts,
		burst: burstSizes, zipf: *zipfS, flowCache: *cacheSize,
		fwState: *stateSize,
	}
	if *table1 {
		r.tableI()
	}
	if *table2 {
		r.tableII()
	}
	if *fig3 {
		r.fig3()
	}
	if *fig4 {
		r.fig4()
	}
	if *throughput {
		r.throughput()
	}
	if *engines || *raw {
		var records []BenchRecord
		if *engines {
			records = r.engines()
			if len(r.burst) > 0 {
				records = append(records, r.burstSweep()...)
			}
			if r.zipf > 1 {
				records = append(records, r.zipfCache()...)
			}
			if r.fwState > 0 {
				records = append(records, r.stateLookup()...)
			}
		}
		if *raw {
			records = append(records, r.rawLookup()...)
		}
		if *jsonOut != "" {
			if err := writeBenchJSON(*jsonOut, records); err != nil {
				fmt.Fprintln(os.Stderr, "lookupbench:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d records to %s\n", len(records), *jsonOut)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type runner struct {
	sizes     []int
	traceN    int
	seed      int64
	parallel  int
	batch     int
	shards    []int
	burst     []int
	zipf      float64
	flowCache int
	fwState   int
}

func (r runner) workload(fam ruleset.Family, size int) (*rule.Set, []rule.Header) {
	s, err := ruleset.Generate(ruleset.Config{Family: fam, Size: size, Seed: r.seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lookupbench: generate:", err)
		os.Exit(1)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: r.traceN, HitRatio: 0.9, Seed: r.seed + 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "lookupbench: trace:", err)
		os.Exit(1)
	}
	return s, trace
}

func newTab() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

// tableI measures every baseline plus this work on each family/size.
func (r runner) tableI() {
	fmt.Println("== Table I: multi-dimensional lookup algorithms (measured) ==")
	tw := newTab()
	fmt.Fprintln(tw, "algorithm\truleset\tbuild\tns/lookup\tmemory\tincremental")
	for _, fam := range ruleset.Families() {
		for _, size := range r.sizes {
			set, trace := r.workload(fam, size)
			name := fmt.Sprintf("%s-%s", fam, ruleset.SizeName(size))
			for _, cls := range baseline.All() {
				start := time.Now()
				if err := cls.Build(set); err != nil {
					fmt.Fprintf(tw, "%s\t%s\t%v\t-\t-\t-\n", cls.Name(), name, err)
					continue
				}
				build := time.Since(start)
				lookups := 0
				start = time.Now()
				for _, h := range trace {
					cls.Match(h)
					lookups++
				}
				perOp := float64(time.Since(start).Nanoseconds()) / float64(lookups)
				fmt.Fprintf(tw, "%s\t%s\t%v\t%.0f\t%s\t%v\n",
					cls.Name(), name, build.Round(time.Millisecond), perOp,
					fmtBytes(cls.MemoryBytes()), cls.IncrementalUpdate())
			}
			// This work (decomposition architecture, MBT mode).
			start := time.Now()
			c, _, err := core.NewV4(core.Config{LPM: core.LPMMultiBitTrie}, set)
			if err != nil {
				fmt.Fprintf(tw, "ThisWork-MBT\t%s\t%v\t-\t-\t-\n", name, err)
				continue
			}
			build := time.Since(start)
			headers := make([]core.Header[lpm.V4], len(trace))
			for i, h := range trace {
				headers[i] = core.V4Header(h)
			}
			start = time.Now()
			for _, h := range headers {
				c.Lookup(h)
			}
			perOp := float64(time.Since(start).Nanoseconds()) / float64(len(headers))
			fmt.Fprintf(tw, "ThisWork-MBT\t%s\t%v\t%.0f\t%s\ttrue\n",
				name, build.Round(time.Millisecond), perOp, fmtBytes(c.Memory().TotalBytes()))
		}
	}
	tw.Flush()
	fmt.Println()
}

// tableII compares the single-field engines on the largest configured
// ruleset's field populations.
func (r runner) tableII() {
	size := r.sizes[len(r.sizes)-1]
	fmt.Printf("== Table II: single-field lookup engines (ACL-%s populations) ==\n", ruleset.SizeName(size))
	set, trace := r.workload(ruleset.ACL, size)

	var prefixes []lpm.Prefix[lpm.V4]
	var lens []uint8
	seen := map[lpm.Prefix[lpm.V4]]bool{}
	for _, rr := range set.Rules() {
		for _, p := range []rule.Prefix{rr.SrcIP, rr.DstIP} {
			lp := lpm.V4Prefix(p)
			if !seen[lp] {
				seen[lp] = true
				prefixes = append(prefixes, lp)
				lens = append(lens, p.Len)
			}
		}
	}
	tw := newTab()
	fmt.Fprintln(tw, "engine\tlabel method\tcycles/lookup\tmemory\tentries")

	type lpmEngine interface {
		Insert(lpm.Prefix[lpm.V4], label.Label) hwsim.Cost
		Lookup(lpm.V4, []label.Label) ([]label.Label, hwsim.Cost)
		Memory() hwsim.MemoryMap
	}
	runLPM := func(name string, labelMethod bool, eng lpmEngine) {
		for i, p := range prefixes {
			eng.Insert(p, label.Label(i))
		}
		var meter hwsim.Meter
		var buf []label.Label
		for _, h := range trace {
			var c hwsim.Cost
			buf, c = eng.Lookup(lpm.V4(h.SrcIP), buf[:0])
			meter.Charge(c)
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f\t%s\t%d\n",
			name, labelMethod, meter.CyclesPerOp(), fmtBytes(eng.Memory().TotalBytes()), len(prefixes))
	}
	mbt, err := lpm.NewMultiBitTrie[lpm.V4](8)
	exitOn(err)
	runLPM("Multi-bit Trie (s=8)", true, mbt)
	amt, err := lpm.NewVariableStrideTrie[lpm.V4](lpm.ChooseStrides(32, lens, 8))
	exitOn(err)
	runLPM("AM-Trie", true, amt)
	runLPM("Binary Search Tree", true, lpm.NewBST[lpm.V4]())
	runLPM("Binary trie + leaf pushing", false, lpm.NewLeafPushTrie[lpm.V4]())

	var ranges []rule.PortRange
	seenR := map[rule.PortRange]bool{}
	for _, rr := range set.Rules() {
		for _, pr := range []rule.PortRange{rr.SrcPort, rr.DstPort} {
			if !seenR[pr] {
				seenR[pr] = true
				ranges = append(ranges, pr)
			}
		}
	}
	runRange := func(name string, labelMethod bool, eng rangematch.Engine) {
		for i, rr := range ranges {
			if _, err := eng.Insert(rr, label.Label(i)); err != nil {
				fmt.Fprintf(tw, "%s\t%v\tinsert: %v\t-\t-\n", name, labelMethod, err)
				return
			}
		}
		var meter hwsim.Meter
		var buf []label.Label
		for _, h := range trace {
			var c hwsim.Cost
			buf, c = eng.Lookup(h.DstPort, buf[:0])
			meter.Charge(c)
		}
		fmt.Fprintf(tw, "%s\t%v\t%.1f\t%s\t%d\n",
			name, labelMethod, meter.CyclesPerOp(), fmtBytes(eng.Memory().TotalBytes()), len(ranges))
	}
	runRange("Register bank", true, rangematch.NewRegisterBank(0))
	runRange("Segment tree", true, rangematch.NewSegmentTree())
	runRange("Range tree", false, rangematch.NewRangeTree())
	tw.Flush()
	fmt.Println()
}

// fig3 prints update cycles per ruleset for MBT mode, BST mode and the
// original rule filter.
func (r runner) fig3() {
	fmt.Println("== Fig. 3: ruleset update time (clock cycles) ==")
	tw := newTab()
	fmt.Fprintln(tw, "ruleset\tMBT mode\tBST mode\toriginal rule filter")
	for _, fam := range ruleset.Families() {
		for _, size := range r.sizes {
			set, _ := r.workload(fam, size)
			tuples := core.CompileSet(set)
			cycles := func(cfg core.Config) int {
				c, err := core.New[lpm.V4](cfg, core.PrefixLens(set))
				exitOn(err)
				cost, err := c.Build(tuples)
				exitOn(err)
				return cost.Cycles
			}
			mbt := cycles(core.Config{LPM: core.LPMMultiBitTrie})
			bst := cycles(core.Config{LPM: core.LPMBinarySearchTree})
			filter := 2*size + 1
			fmt.Fprintf(tw, "%s-%s\t%d\t%d\t%d\n", fam, ruleset.SizeName(size), mbt, bst, filter)
		}
	}
	tw.Flush()
	fmt.Println()
}

// fig4 prints modeled lookup cycles against PHS size for both LPM modes.
func (r runner) fig4() {
	fmt.Println("== Fig. 4: lookup time vs packet header set size (clock cycles) ==")
	size := r.sizes[len(r.sizes)-1]
	set, trace := r.workload(ruleset.ACL, size)
	phsSizes := []int{1000, 2000, 5000, 10000, 20000}
	tw := newTab()
	header := "PHS size"
	for _, mode := range []string{"MBT", "BST"} {
		header += "\t" + mode
	}
	fmt.Fprintln(tw, header+"\tMBT/BST ratio")

	models := map[string]*core.Classifier[lpm.V4]{}
	for name, cfg := range map[string]core.Config{
		"MBT": {LPM: core.LPMMultiBitTrie},
		"BST": {LPM: core.LPMBinarySearchTree},
	} {
		c, _, err := core.NewV4(cfg, set)
		exitOn(err)
		for _, h := range trace {
			c.Lookup(core.V4Header(h))
		}
		models[name] = c
	}
	for _, phs := range phsSizes {
		mbt := models["MBT"].LookupCycles(phs)
		bst := models["BST"].LookupCycles(phs)
		fmt.Fprintf(tw, "%d\t%.0f\t%.0f\t%.1fx\n", phs, mbt, bst, bst/mbt)
	}
	tw.Flush()
	fmt.Println()
}

// throughput prints the Section IV.D figures.
func (r runner) throughput() {
	size := r.sizes[len(r.sizes)-1]
	fmt.Printf("== Section IV.D: throughput at 200 MHz, 72 B min frames (ACL-%s) ==\n", ruleset.SizeName(size))
	set, trace := r.workload(ruleset.ACL, size)
	tw := newTab()
	fmt.Fprintln(tw, "mode\tcycles/packet\tMpps\tGbps\tmemory")
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"MBT", core.Config{LPM: core.LPMMultiBitTrie}},
		{"BST", core.Config{LPM: core.LPMBinarySearchTree}},
		{"AM-Trie", core.Config{LPM: core.LPMAMTrie}},
	} {
		c, _, err := core.NewV4(mode.cfg, set)
		exitOn(err)
		for _, h := range trace {
			c.Lookup(core.V4Header(h))
		}
		tp := c.Throughput()
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%s\n",
			mode.name, tp.CyclesPerPacket, tp.Mpps, tp.Gbps, fmtBytes(c.Memory().TotalBytes()))
	}
	tw.Flush()
	fmt.Println()
}

// BenchRecord is one machine-readable measurement emitted to the -json
// file; schema consumers key on experiment + backend + family + rules.
type BenchRecord struct {
	Experiment     string  `json:"experiment"`
	Backend        string  `json:"backend"`
	Family         string  `json:"family"`
	Rules          int     `json:"rules"`
	TraceLen       int     `json:"trace_len"`
	Parallel       int     `json:"parallel"`
	Batch          int     `json:"batch"`
	Shards         int     `json:"shards"`
	NsPerLookup    float64 `json:"ns_per_lookup"`
	MLookupsPerSec float64 `json:"mlookups_per_sec"`
	MemoryBytes    int     `json:"memory_bytes"`
	Incremental    bool    `json:"incremental"`
	// Zipf experiment fields: the skew parameter of the trace, the
	// flow-cache slot count (0 = uncached record) and the measured
	// cache hit rate. CacheHitRate is deliberately NOT omitempty: a
	// cached record whose hit rate collapsed to exactly 0 must still
	// carry the measurement, or the benchdiff hit-rate gate could not
	// tell a total collapse from an uncached record.
	Zipf         float64 `json:"zipf,omitempty"`
	CacheEntries int     `json:"cache_entries,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Flow-state experiment fields: the state slot count (0 = stateless
	// record) and the measured flow-state hit rate. StateHitRate follows
	// the CacheHitRate contract — NOT omitempty, so a collapse to exactly
	// 0 on a stateful record stays a reportable measurement.
	StateEntries int     `json:"state_entries,omitempty"`
	StateHitRate float64 `json:"state_hit_rate"`
	Error        string  `json:"error,omitempty"`
}

// engines measures every backend through the public Engine API at each
// configured shard count: the -parallel goroutines share one engine and
// stream the trace through LookupBatch, exercising the RCU snapshot
// read path (one snapshot pair per shard replica) the way a multi-core
// packet pipeline would. Emitting shards=1 alongside higher counts
// gives the sharded-vs-unsharded comparison in one artifact.
func (r runner) engines() []BenchRecord {
	shardCounts := r.shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1}
	}
	fmt.Printf("== Engine API: parallel batched lookups (%d goroutines, batch %d, shards %v) ==\n",
		r.parallel, r.batch, shardCounts)
	tw := newTab()
	fmt.Fprintln(tw, "backend\truleset\tshards\tns/lookup\tMlookups/s\tmemory\tincremental")
	var records []BenchRecord
	for _, size := range r.sizes {
		set, trace := r.workload(ruleset.ACL, size)
		name := fmt.Sprintf("acl-%s", ruleset.SizeName(size))
		for _, b := range repro.Backends() {
			for _, shards := range shardCounts {
				rec := BenchRecord{
					Experiment: "engine_parallel_lookup",
					Backend:    b.String(),
					Family:     "acl",
					Rules:      set.Len(),
					TraceLen:   len(trace),
					Parallel:   r.parallel,
					Batch:      r.batch,
					Shards:     shards,
				}
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(set), repro.WithShards(shards))
				if err != nil {
					rec.Error = err.Error()
					records = append(records, rec)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t-\t-\t-\n", b, name, shards, err)
					continue
				}
				nsPerOp, mlps := r.measureParallel(eng, trace)
				rec.NsPerLookup = nsPerOp
				rec.MLookupsPerSec = mlps
				rec.MemoryBytes = eng.Memory().TotalBytes()
				rec.Incremental = eng.IncrementalUpdate()
				records = append(records, rec)
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2f\t%s\t%v\n",
					b, name, shards, nsPerOp, mlps, fmtBytes(rec.MemoryBytes), rec.Incremental)
			}
		}
	}
	tw.Flush()
	fmt.Println()
	return records
}

// burstSweep measures the stage-fused vector kernel's burst-size
// curve: the decomposition backend classifies the trace through the
// allocation-free LookupBatchInto entry point at each -burst size, so
// the fused-versus-header-at-a-time crossover (fusion kicks in at
// bursts >= 4) is a tracked artifact rather than a one-off benchmark.
func (r runner) burstSweep() []BenchRecord {
	fmt.Printf("== Engine API: stage-fused burst sweep (%d goroutines, bursts %v) ==\n",
		r.parallel, r.burst)
	tw := newTab()
	fmt.Fprintln(tw, "backend\truleset\tburst\tns/lookup\tMlookups/s")
	var records []BenchRecord
	b := repro.BackendDecomposition
	for _, size := range r.sizes {
		set, trace := r.workload(ruleset.ACL, size)
		name := fmt.Sprintf("acl-%s", ruleset.SizeName(size))
		for _, burst := range r.burst {
			rec := BenchRecord{
				Experiment: "engine_burst_lookup",
				Backend:    b.String(),
				Family:     "acl",
				Rules:      set.Len(),
				TraceLen:   len(trace),
				Parallel:   r.parallel,
				Batch:      burst,
				Shards:     1,
			}
			eng, err := repro.New(repro.WithBackend(b), repro.WithRules(set))
			if err != nil {
				rec.Error = err.Error()
				records = append(records, rec)
				fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t-\n", b, name, burst, err)
				continue
			}
			nsPerOp, mlps := r.measureBurst(eng, trace, burst)
			rec.NsPerLookup = nsPerOp
			rec.MLookupsPerSec = mlps
			rec.MemoryBytes = eng.Memory().TotalBytes()
			rec.Incremental = eng.IncrementalUpdate()
			records = append(records, rec)
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2f\n", b, name, burst, nsPerOp, mlps)
		}
	}
	tw.Flush()
	fmt.Println()
	return records
}

// measureBurst streams the trace through LookupBatchInto at the given
// burst size from r.parallel goroutines, each with a preallocated
// result slab, and returns wall-clock ns per lookup and aggregate
// Mlookups/s.
func (r runner) measureBurst(eng repro.Engine, trace []rule.Header, burst int) (nsPerOp, mlps float64) {
	workers := r.parallel // clamped to >= 1 at flag parsing
	run := func() time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]repro.Result, burst)
				for off := 0; off < len(trace); off += burst {
					end := off + burst
					if end > len(trace) {
						end = len(trace)
					}
					eng.LookupBatchInto(trace[off:end], out[:end-off])
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	run() // warm up pools and lazy tables
	elapsed := run()
	lookups := workers * len(trace)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(lookups)
	mlps = float64(lookups) / elapsed.Seconds() / 1e6
	return nsPerOp, mlps
}

// zipfTrace resamples the base trace with Zipf(s)-distributed flow
// popularity: index 0 is the hottest flow, matching the skewed flow
// popularity of production traffic that exact-match caches exploit.
func (r runner) zipfTrace(base []rule.Header, n int) []rule.Header {
	rng := rand.New(rand.NewSource(r.seed + 7))
	z := rand.NewZipf(rng, r.zipf, 1, uint64(len(base)-1))
	out := make([]rule.Header, n)
	for i := range out {
		out[i] = base[z.Uint64()]
	}
	return out
}

// zipfCache measures every backend on the Zipf-skewed trace twice: bare
// and behind a flow cache, reporting the cached path's hit rate — the
// skewed-traffic scenario exact-match caches are judged on.
func (r runner) zipfCache() []BenchRecord {
	shardCounts := r.shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1}
	}
	fmt.Printf("== Engine API: Zipf(s=%.2f) skewed traffic, flow cache %d entries ==\n", r.zipf, r.flowCache)
	tw := newTab()
	fmt.Fprintln(tw, "backend\truleset\tshards\tcache\tns/lookup\tMlookups/s\thit rate")
	var records []BenchRecord
	for _, size := range r.sizes {
		set, base := r.workload(ruleset.ACL, size)
		trace := r.zipfTrace(base, len(base))
		name := fmt.Sprintf("acl-%s", ruleset.SizeName(size))
		for _, b := range repro.Backends() {
			for _, shards := range shardCounts {
				for _, cacheEntries := range []int{0, r.flowCache} {
					rec := BenchRecord{
						Experiment: "engine_zipf_lookup",
						Backend:    b.String(),
						Family:     "acl",
						Rules:      set.Len(),
						TraceLen:   len(trace),
						Parallel:   r.parallel,
						Batch:      r.batch,
						Shards:     shards,
						Zipf:       r.zipf,
					}
					eng, err := repro.New(repro.WithBackend(b), repro.WithRules(set),
						repro.WithShards(shards), repro.WithFlowCache(cacheEntries))
					if err != nil {
						rec.Error = err.Error()
						records = append(records, rec)
						fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%v\t-\t-\n", b, name, shards, cacheEntries, err)
						continue
					}
					nsPerOp, mlps := r.measureParallel(eng, trace)
					rec.NsPerLookup = nsPerOp
					rec.MLookupsPerSec = mlps
					rec.MemoryBytes = eng.Memory().TotalBytes()
					rec.Incremental = eng.IncrementalUpdate()
					hitRate := "-"
					if cs, ok := eng.(interface{ CacheStats() repro.FlowCacheStats }); ok {
						rec.CacheEntries = cacheEntries
						rec.CacheHitRate = cs.CacheStats().HitRate()
						hitRate = fmt.Sprintf("%.1f%%", 100*rec.CacheHitRate)
					}
					records = append(records, rec)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.0f\t%.2f\t%s\n",
						b, name, shards, cacheEntries, nsPerOp, mlps, hitRate)
				}
			}
		}
	}
	tw.Flush()
	fmt.Println()
	return records
}

// establishSet returns a copy of the ruleset with every other rule's
// action rewritten to allow-established, so forward matches install
// flow state in the stateful experiment.
func establishSet(set *rule.Set) *rule.Set {
	src := set.Rules()
	rules := make([]rule.Rule, len(src))
	copy(rules, src)
	for i := range rules {
		if i%2 == 0 {
			rules[i].Action = rule.ActionEstablish
		}
	}
	out, err := rule.NewSet(rules)
	exitOn(err)
	return out
}

// bidiTrace interleaves each forward header with its reverse so the
// replay revisits both directions of every flow — the traffic shape a
// conntrack table is judged on.
func bidiTrace(base []rule.Header) []rule.Header {
	out := make([]rule.Header, 0, 2*len(base))
	for _, h := range base {
		rev := h
		rev.SrcIP, rev.DstIP = h.DstIP, h.SrcIP
		rev.SrcPort, rev.DstPort = h.DstPort, h.SrcPort
		out = append(out, h, rev)
	}
	return out
}

// stateLookup measures every backend on the bidirectional trace twice:
// stateless and behind the flow-state layer, reporting the stateful
// path's hit rate. The warm-up pass inside measureParallel installs the
// flow entries, so the measured pass serves established traffic — the
// steady state of a conntrack firewall.
func (r runner) stateLookup() []BenchRecord {
	fmt.Printf("== Engine API: stateful flow tracking, %d slots, bidirectional trace ==\n", r.fwState)
	tw := newTab()
	fmt.Fprintln(tw, "backend\truleset\tstate\tns/lookup\tMlookups/s\thit rate")
	var records []BenchRecord
	for _, size := range r.sizes {
		base, trace0 := r.workload(ruleset.ACL, size)
		set := establishSet(base)
		trace := bidiTrace(trace0)
		name := fmt.Sprintf("acl-%s", ruleset.SizeName(size))
		for _, b := range repro.Backends() {
			for _, stateEntries := range []int{0, r.fwState} {
				rec := BenchRecord{
					Experiment: "engine_state_lookup",
					Backend:    b.String(),
					Family:     "acl",
					Rules:      set.Len(),
					TraceLen:   len(trace),
					Parallel:   r.parallel,
					Batch:      r.batch,
					Shards:     1,
				}
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(set),
					repro.WithFlowState(stateEntries, 0))
				if err != nil {
					rec.Error = err.Error()
					records = append(records, rec)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t-\t-\n", b, name, stateEntries, err)
					continue
				}
				nsPerOp, mlps := r.measureParallel(eng, trace)
				rec.NsPerLookup = nsPerOp
				rec.MLookupsPerSec = mlps
				rec.MemoryBytes = eng.Memory().TotalBytes()
				rec.Incremental = eng.IncrementalUpdate()
				hitRate := "-"
				if ss, ok := eng.(interface{ StateStats() repro.FlowStateStats }); ok {
					rec.StateEntries = stateEntries
					st := ss.StateStats()
					if total := st.Hits + st.Misses; total > 0 {
						rec.StateHitRate = float64(st.Hits) / float64(total)
					}
					hitRate = fmt.Sprintf("%.1f%%", 100*rec.StateHitRate)
				}
				records = append(records, rec)
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2f\t%s\n",
					b, name, stateEntries, nsPerOp, mlps, hitRate)
			}
		}
	}
	tw.Flush()
	fmt.Println()
	return records
}

// rawBatcher is the raw-frame burst entry point shared by repro.Engine
// and *repro.Classifier6.
type rawBatcher interface {
	LookupBytesBatch(frames [][]byte, out []repro.Result) int
}

// rawFrames synthesizes one Ethernet frame per trace header. Only
// TCP/UDP carry port bytes on the wire, so other protocols have their
// ports zeroed first — the headers the decoder recovers are then
// byte-identical to what the parsed path would see.
func rawFrames(trace []rule.Header) [][]byte {
	frames := make([][]byte, len(trace))
	for i, h := range trace {
		if h.Proto != rule.ProtoTCP && h.Proto != rule.ProtoUDP {
			h.SrcPort, h.DstPort = 0, 0
		}
		frames[i] = packet.BuildEthernet(packet.BuildIPv4(h))
	}
	return frames
}

// rawLookup measures the raw-frame ingress path: frames stream through
// LookupBytesBatch from r.parallel goroutines on every backend at each
// shard count, plus the split-64 IPv6 engine on the embedded ruleset.
func (r runner) rawLookup() []BenchRecord {
	shardCounts := r.shards
	if len(shardCounts) == 0 {
		shardCounts = []int{1}
	}
	fmt.Printf("== Engine API: raw-frame burst ingestion (%d goroutines, batch %d, shards %v) ==\n",
		r.parallel, r.batch, shardCounts)
	tw := newTab()
	fmt.Fprintln(tw, "backend\truleset\tshards\tns/lookup\tMlookups/s")
	var records []BenchRecord
	for _, size := range r.sizes {
		set, trace := r.workload(ruleset.ACL, size)
		frames := rawFrames(trace)
		name := fmt.Sprintf("acl-%s", ruleset.SizeName(size))
		for _, b := range repro.Backends() {
			for _, shards := range shardCounts {
				rec := BenchRecord{
					Experiment: "engine_raw_lookup",
					Backend:    b.String(),
					Family:     "acl",
					Rules:      set.Len(),
					TraceLen:   len(trace),
					Parallel:   r.parallel,
					Batch:      r.batch,
					Shards:     shards,
				}
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(set), repro.WithShards(shards))
				if err != nil {
					rec.Error = err.Error()
					records = append(records, rec)
					fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t-\n", b, name, shards, err)
					continue
				}
				rec.NsPerLookup, rec.MLookupsPerSec = r.measureRaw(eng, frames)
				rec.MemoryBytes = eng.Memory().TotalBytes()
				rec.Incremental = eng.IncrementalUpdate()
				records = append(records, rec)
				fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.2f\n",
					b, name, shards, rec.NsPerLookup, rec.MLookupsPerSec)
			}
		}
		// IPv6: the same ruleset and trace mapped through the verdict-
		// preserving embedding, served by the split-64 decomposition.
		rules6 := ruleset.Embed6Set(set)
		frames6 := make([][]byte, len(trace))
		for i, h := range trace {
			if h.Proto != rule.ProtoTCP && h.Proto != rule.ProtoUDP {
				h.SrcPort, h.DstPort = 0, 0
			}
			frames6[i] = packet.BuildEthernet6(ruleset.Embed6Header(h))
		}
		rec := BenchRecord{
			Experiment: "engine_raw_lookup",
			Backend:    repro.BackendDecomposition.String(),
			Family:     "acl-v6",
			Rules:      len(rules6),
			TraceLen:   len(trace),
			Parallel:   r.parallel,
			Batch:      r.batch,
			Shards:     1,
		}
		eng6, err := repro.New6()
		if err == nil {
			_, err = eng6.Replace(rules6)
		}
		if err != nil {
			rec.Error = err.Error()
			records = append(records, rec)
			fmt.Fprintf(tw, "%s\t%s-v6\t%d\t%v\t-\n", repro.BackendDecomposition, name, 1, err)
		} else {
			rec.NsPerLookup, rec.MLookupsPerSec = r.measureRaw(eng6, frames6)
			rec.MemoryBytes = eng6.Memory().TotalBytes()
			rec.Incremental = true
			records = append(records, rec)
			fmt.Fprintf(tw, "%s\t%s-v6\t%d\t%.0f\t%.2f\n",
				repro.BackendDecomposition, name, 1, rec.NsPerLookup, rec.MLookupsPerSec)
		}
	}
	tw.Flush()
	fmt.Println()
	return records
}

// measureRaw streams the frame slab through LookupBytesBatch from
// r.parallel goroutines and returns wall-clock ns per frame and
// aggregate Mlookups/s.
func (r runner) measureRaw(eng rawBatcher, frames [][]byte) (nsPerOp, mlps float64) {
	batch, workers := r.batch, r.parallel // clamped to >= 1 at flag parsing
	run := func() time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := make([]repro.Result, batch)
				for off := 0; off < len(frames); off += batch {
					end := off + batch
					if end > len(frames) {
						end = len(frames)
					}
					eng.LookupBytesBatch(frames[off:end], out[:end-off])
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	run() // warm up pools, caches and lazy tables
	elapsed := run()
	lookups := workers * len(frames)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(lookups)
	mlps = float64(lookups) / elapsed.Seconds() / 1e6
	return nsPerOp, mlps
}

// measureParallel streams the trace through the engine from r.parallel
// goroutines and returns wall-clock ns per lookup and aggregate
// Mlookups/s.
func (r runner) measureParallel(eng repro.Engine, trace []rule.Header) (nsPerOp, mlps float64) {
	batch, workers := r.batch, r.parallel // clamped to >= 1 at flag parsing
	run := func() time.Duration {
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for off := 0; off < len(trace); off += batch {
					end := off + batch
					if end > len(trace) {
						end = len(trace)
					}
					if batch == 1 {
						eng.Lookup(trace[off])
					} else {
						eng.LookupBatch(trace[off:end])
					}
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	run() // warm up caches and lazy tables
	elapsed := run()
	lookups := workers * len(trace)
	nsPerOp = float64(elapsed.Nanoseconds()) / float64(lookups)
	mlps = float64(lookups) / elapsed.Seconds() / 1e6
	return nsPerOp, mlps
}

// writeBenchJSON writes the records as one JSON array.
func writeBenchJSON(path string, records []BenchRecord) error {
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lookupbench:", err)
		os.Exit(1)
	}
}
