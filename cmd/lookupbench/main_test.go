package main

import "testing"

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1000, 5000,10000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1000, 5000, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "abc", "0", "-5", "100,,200"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) should fail", bad)
		}
	}
}

func TestFmtBytes(t *testing.T) {
	tests := map[int]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		3 << 20: "3.0 MiB",
		1536:    "1.5 KiB",
	}
	for n, want := range tests {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
