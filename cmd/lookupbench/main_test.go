package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1000, 5000,10000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1000, 5000, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "abc", "0", "-5", "100,,200"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) should fail", bad)
		}
	}
}

// TestEnginesJSONRoundtrip runs the Engine benchmark at a tiny scale and
// verifies the BENCH_lookup.json records parse back with every backend
// present at both the unsharded and sharded replica counts.
func TestEnginesJSONRoundtrip(t *testing.T) {
	r := runner{sizes: []int{40}, traceN: 120, seed: 1, parallel: 2, batch: 16, shards: []int{1, 3}}
	records := r.engines()
	if len(records) == 0 {
		t.Fatal("no records")
	}
	path := filepath.Join(t.TempDir(), "BENCH_lookup.json")
	if err := writeBenchJSON(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(records) {
		t.Fatalf("roundtrip lost records: %d vs %d", len(back), len(records))
	}
	seen := map[string]bool{}
	shardCounts := map[int]bool{}
	for _, rec := range back {
		seen[rec.Backend] = true
		shardCounts[rec.Shards] = true
		if rec.Error == "" && rec.MLookupsPerSec <= 0 {
			t.Errorf("%s (shards %d): non-positive throughput", rec.Backend, rec.Shards)
		}
	}
	if !seen["Decomposition"] || !seen["TSS"] {
		t.Errorf("missing backends in %v", seen)
	}
	if !shardCounts[1] || !shardCounts[3] {
		t.Errorf("missing shard counts in %v", shardCounts)
	}
}

func TestFmtBytes(t *testing.T) {
	tests := map[int]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		3 << 20: "3.0 MiB",
		1536:    "1.5 KiB",
	}
	for n, want := range tests {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
