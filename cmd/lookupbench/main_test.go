package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rule"
)

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("1000, 5000,10000")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1000, 5000, 10000}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	for _, bad := range []string{"", "abc", "0", "-5", "100,,200"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) should fail", bad)
		}
	}
}

// TestEnginesJSONRoundtrip runs the Engine benchmark at a tiny scale and
// verifies the BENCH_lookup.json records parse back with every backend
// present at both the unsharded and sharded replica counts.
func TestEnginesJSONRoundtrip(t *testing.T) {
	r := runner{sizes: []int{40}, traceN: 120, seed: 1, parallel: 2, batch: 16, shards: []int{1, 3}}
	records := r.engines()
	if len(records) == 0 {
		t.Fatal("no records")
	}
	path := filepath.Join(t.TempDir(), "BENCH_lookup.json")
	if err := writeBenchJSON(path, records); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []BenchRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(back) != len(records) {
		t.Fatalf("roundtrip lost records: %d vs %d", len(back), len(records))
	}
	seen := map[string]bool{}
	shardCounts := map[int]bool{}
	for _, rec := range back {
		seen[rec.Backend] = true
		shardCounts[rec.Shards] = true
		if rec.Error == "" && rec.MLookupsPerSec <= 0 {
			t.Errorf("%s (shards %d): non-positive throughput", rec.Backend, rec.Shards)
		}
	}
	if !seen["Decomposition"] || !seen["TSS"] {
		t.Errorf("missing backends in %v", seen)
	}
	if !shardCounts[1] || !shardCounts[3] {
		t.Errorf("missing shard counts in %v", shardCounts)
	}
}

// TestZipfCacheRecords runs the skewed-traffic experiment at a tiny
// scale and checks the cached-vs-uncached record pairing: every backend
// emits one record with cache_entries=0 and one with the cache size,
// zipf set on both, and a positive hit rate on the cached record (the
// skewed trace repeats its hot flows within even a 120-header run).
func TestZipfCacheRecords(t *testing.T) {
	r := runner{sizes: []int{40}, traceN: 120, seed: 1, parallel: 2, batch: 16,
		shards: []int{1}, zipf: 1.3, flowCache: 256}
	records := r.zipfCache()
	cached, uncached := map[string]BenchRecord{}, map[string]BenchRecord{}
	for _, rec := range records {
		if rec.Experiment != "engine_zipf_lookup" {
			t.Fatalf("experiment = %q", rec.Experiment)
		}
		if rec.Zipf != 1.3 {
			t.Fatalf("%s: zipf field = %v", rec.Backend, rec.Zipf)
		}
		if rec.CacheEntries > 0 {
			cached[rec.Backend] = rec
		} else {
			uncached[rec.Backend] = rec
		}
	}
	if len(cached) == 0 || len(cached) != len(uncached) {
		t.Fatalf("unpaired records: %d cached, %d uncached", len(cached), len(uncached))
	}
	for b, rec := range cached {
		if rec.Error != "" {
			continue
		}
		if rec.CacheHitRate <= 0 || rec.CacheHitRate > 1 {
			t.Errorf("%s: cache hit rate %v", b, rec.CacheHitRate)
		}
	}
}

// TestStateLookupRecords runs the stateful experiment at a tiny scale
// and checks the stateless-vs-stateful record pairing: every backend
// emits one record with state_entries=0 and one with the slot count,
// and the stateful record measures a positive hit rate (the warm-up
// pass installs the flows the measured pass then hits).
func TestStateLookupRecords(t *testing.T) {
	r := runner{sizes: []int{40}, traceN: 120, seed: 1, parallel: 2, batch: 16,
		fwState: 1 << 14}
	records := r.stateLookup()
	stateful, stateless := map[string]BenchRecord{}, map[string]BenchRecord{}
	for _, rec := range records {
		if rec.Experiment != "engine_state_lookup" {
			t.Fatalf("experiment = %q", rec.Experiment)
		}
		if rec.StateEntries > 0 {
			stateful[rec.Backend] = rec
		} else {
			stateless[rec.Backend] = rec
		}
	}
	if len(stateful) == 0 || len(stateful) != len(stateless) {
		t.Fatalf("unpaired records: %d stateful, %d stateless", len(stateful), len(stateless))
	}
	for b, rec := range stateful {
		if rec.Error != "" {
			continue
		}
		if rec.StateHitRate <= 0 || rec.StateHitRate > 1 {
			t.Errorf("%s: state hit rate %v", b, rec.StateHitRate)
		}
	}
	for b, rec := range stateless {
		if rec.StateHitRate != 0 {
			t.Errorf("%s: stateless record carries hit rate %v", b, rec.StateHitRate)
		}
	}
}

// TestZipfTraceIsSkewed checks the resampler concentrates traffic: the
// most popular header of the skewed trace must appear far more often
// than a uniform draw would allow.
func TestZipfTraceIsSkewed(t *testing.T) {
	r := runner{seed: 1, zipf: 1.2}
	base := make([]rule.Header, 1000)
	for i := range base {
		base[i] = rule.Header{SrcIP: uint32(i), DstIP: uint32(i)}
	}
	trace := r.zipfTrace(base, 5000)
	counts := map[uint32]int{}
	top := 0
	for _, h := range trace {
		counts[h.SrcIP]++
		if counts[h.SrcIP] > top {
			top = counts[h.SrcIP]
		}
	}
	// Uniform resampling would put ~5 hits on each of the 1000 flows.
	if top < 100 {
		t.Errorf("hottest flow has %d of %d packets; trace not skewed", top, len(trace))
	}
}

func TestFmtBytes(t *testing.T) {
	tests := map[int]string{
		512:     "512 B",
		2048:    "2.0 KiB",
		3 << 20: "3.0 MiB",
		1536:    "1.5 KiB",
	}
	for n, want := range tests {
		if got := fmtBytes(n); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", n, got, want)
		}
	}
}

// TestBurstSweepRecords runs the stage-fused sweep at a tiny scale and
// checks one engine_burst_lookup record comes out per configured burst
// size, with the burst riding in the batch identity field and a
// positive measured throughput.
func TestBurstSweepRecords(t *testing.T) {
	r := runner{sizes: []int{40}, traceN: 120, seed: 1, parallel: 2,
		burst: []int{1, 16, 64}}
	records := r.burstSweep()
	if len(records) != len(r.burst) {
		t.Fatalf("got %d records, want one per burst size %v", len(records), r.burst)
	}
	seen := map[int]bool{}
	for _, rec := range records {
		if rec.Experiment != "engine_burst_lookup" {
			t.Errorf("experiment = %q", rec.Experiment)
		}
		if rec.Backend != "Decomposition" {
			t.Errorf("backend = %q", rec.Backend)
		}
		seen[rec.Batch] = true
		if rec.Error == "" && rec.MLookupsPerSec <= 0 {
			t.Errorf("burst %d: non-positive throughput", rec.Batch)
		}
	}
	for _, b := range r.burst {
		if !seen[b] {
			t.Errorf("missing burst %d in %v", b, seen)
		}
	}
}
