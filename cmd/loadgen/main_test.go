package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	repro "repro"
	"repro/internal/ctl"
)

// startDaemon serves a fresh engine over TCP, as classifierd would.
func startDaemon(t *testing.T, opts ...repro.Option) string {
	t.Helper()
	eng, err := repro.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return l.Addr().String()
}

// loadRecords runs one loadgen invocation and decodes its JSON output.
func loadRecords(t *testing.T, args ...string) []Record {
	t.Helper()
	jsonPath := filepath.Join(t.TempDir(), "BENCH_workload.json")
	var b strings.Builder
	if err := run(append(args, "-json", jsonPath), &b); err != nil {
		t.Fatalf("loadgen %v: %v\noutput:\n%s", args, err, b.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

// checkRecord asserts the acceptance contract every loadgen run must
// meet: non-zero latency quantiles and zero errors.
func checkRecord(t *testing.T, rec Record) {
	t.Helper()
	want := "workload_replay"
	if rec.Model == "conntrack" {
		want = "workload_conntrack"
	}
	if rec.Experiment != want {
		t.Errorf("experiment = %q, want %q", rec.Experiment, want)
	}
	if rec.Lookups == 0 {
		t.Errorf("%s: no lookups issued", rec.Model)
	}
	if rec.LookupP50Ns <= 0 || rec.LookupP99Ns <= 0 {
		t.Errorf("%s: zero latency quantiles: p50=%v p99=%v", rec.Model, rec.LookupP50Ns, rec.LookupP99Ns)
	}
	if rec.LookupP50Ns > rec.LookupP99Ns {
		t.Errorf("%s: p50 %v above p99 %v", rec.Model, rec.LookupP50Ns, rec.LookupP99Ns)
	}
	if rec.LookupErrors != 0 || rec.UpdateErrors != 0 || rec.Error != "" {
		t.Errorf("%s: errors: lookup=%d update=%d err=%q", rec.Model, rec.LookupErrors, rec.UpdateErrors, rec.Error)
	}
	if rec.EventsPerSec <= 0 || rec.DurationSec <= 0 {
		t.Errorf("%s: bad throughput: %v ev/s over %vs", rec.Model, rec.EventsPerSec, rec.DurationSec)
	}
}

// TestInProcessAllModels is the in-process acceptance path: every
// traffic model replayed against the default engine with updates and
// swaps, all producing non-zero latency quantiles and zero errors.
func TestInProcessAllModels(t *testing.T) {
	recs := loadRecords(t, "-model", "all", "-events", "3000", "-duration", "250ms",
		"-size", "150", "-workers", "2")
	if len(recs) != 5 {
		t.Fatalf("%d records, want 5", len(recs))
	}
	seen := map[string]bool{}
	for _, rec := range recs {
		checkRecord(t, rec)
		seen[rec.Model] = true
		if rec.Remote {
			t.Errorf("%s: marked remote", rec.Model)
		}
		if rec.Updates == 0 {
			t.Errorf("%s: no updates issued", rec.Model)
		}
	}
	if len(seen) != 5 {
		t.Fatalf("models covered: %v", seen)
	}
}

// TestInProcessComposition exercises a sharded, flow-cached non-default
// backend.
func TestInProcessComposition(t *testing.T) {
	recs := loadRecords(t, "-model", "zipf", "-events", "2000", "-duration", "150ms",
		"-size", "120", "-backend", "tss", "-shards", "2", "-flowcache", "4096")
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	checkRecord(t, recs[0])
	if recs[0].Backend != "TSS" || recs[0].Shards != 2 || recs[0].CacheEntries != 4096 {
		t.Fatalf("composition not recorded: %+v", recs[0])
	}
}

// TestConntrackScenario is the stateful acceptance path: the conntrack
// model against a flow-state composition whose ruleset establishes
// flows, so the replay must install state, hit on reverse traffic and
// record its own benchdiff trajectory.
func TestConntrackScenario(t *testing.T) {
	recs := loadRecords(t, "-model", "conntrack", "-events", "4000", "-duration", "250ms",
		"-size", "150", "-fwstate", "65536", "-establish", "0.5", "-flood", "0.1",
		"-update-ratio", "0", "-swaps", "0", "-workers", "2")
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[0]
	checkRecord(t, rec)
	if rec.Experiment != "workload_conntrack" {
		t.Fatalf("experiment = %q", rec.Experiment)
	}
	if rec.StateEntries != 65536 || rec.FloodRatio != 0.1 {
		t.Fatalf("composition not recorded: %+v", rec)
	}
	// Half the rules establish and the model revisits both directions of
	// live connections, so the replay must both install and hit state.
	if rec.StateInstall == 0 {
		t.Fatalf("stateful replay installed no flows: %+v", rec)
	}
	if rec.StateHits == 0 || rec.StateHitRate <= 0 {
		t.Fatalf("stateful replay never hit flow state: %+v", rec)
	}
	if rec.StateHitRate > 1 {
		t.Fatalf("state hit rate %v out of range", rec.StateHitRate)
	}
}

// TestRemoteShift is the remote acceptance path: loadgen -addr against
// a live daemon with the locality-shift model.
func TestRemoteShift(t *testing.T) {
	addr := startDaemon(t)
	recs := loadRecords(t, "-addr", addr, "-model", "shift", "-events", "2000",
		"-duration", "250ms", "-size", "120", "-workers", "3", "-batch", "16")
	if len(recs) != 1 {
		t.Fatalf("%d records", len(recs))
	}
	rec := recs[0]
	checkRecord(t, rec)
	if !rec.Remote || rec.Backend != "remote" {
		t.Fatalf("record not marked remote: %+v", rec)
	}
	if rec.Updates == 0 {
		t.Fatalf("no updates replayed remotely")
	}
}

func TestFlagErrors(t *testing.T) {
	var b strings.Builder
	for _, args := range [][]string{
		{"-model", "nope"},
		{"-family", "nope"},
		{"-backend", "nope"},
		{"-events", "0"},
		{"-rules", "/nonexistent"},
		{"-addr", "127.0.0.1:1", "-events", "10", "-duration", "10ms"}, // connection refused
		{"-model", "zipf", "-zipf", "0.5", "-events", "10", "-duration", "10ms"},
		{"-fwstate", "1024", "-addr", "127.0.0.1:1"},
		{"-establish", "1.5"},
	} {
		if err := run(append(args, "-json", ""), &b); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}
