// Command loadgen replays deterministic trace workloads — timestamped
// schedules mixing lookups, incremental updates and atomic whole-ruleset
// swaps under five traffic models (uniform, zipf, bursty, shift,
// conntrack; see repro/internal/workload) — against either an in-process
// engine composition (any backend × shards × flow cache × flow state) or
// a live classifierd over the ctl protocol, and reports HDR-style
// latency distributions (p50/p90/p99/p999), achieved throughput and
// per-op error counts.
//
// Usage:
//
//	loadgen -model zipf -duration 5s
//	loadgen -model all -events 10000 -duration 1s -backend tss -shards 4
//	loadgen -model shift -flowcache 65536 -update-ratio 0.05 -swaps 2
//	loadgen -model zipf -raw -batch 64
//	loadgen -model conntrack -fwstate 65536 -establish 0.3 -flood 0.1 -swaps 2
//	loadgen -addr 127.0.0.1:9099 -model shift -workers 4 -batch 32
//
// The conntrack scenario is the stateful composition's workload: with
// -fwstate the engine tracks established flows, -establish rewrites that
// fraction of the ruleset's actions to allow-established so forward
// packets install flow state, the model's connection churn revisits both
// directions of live flows (state hits), -flood interleaves one-shot
// SYN-flood flows that install but never hit, and -swaps exercises
// swap-while-connections-live invalidation. Conntrack runs emit
// workload_conntrack records (with the achieved state hit rate) so
// benchdiff gates the stateful path separately.
//
// The replay is open loop: every event carries a scheduled arrival
// offset, N workers pace their lookup stripes against the wall clock,
// and latency is measured from the scheduled arrival — so queueing delay
// when the target falls behind is charged to the distribution instead of
// silently coordinating with the load (no coordinated omission). Updates
// run in schedule order on a dedicated control lane, the paper's single
// decision-control channel. Remote workers each hold their own ctl
// connection and drain arrival backlog through pipelined LOOKUP writes
// (-batch).
//
// With -raw (in-process only) every lookup worker synthesizes its
// headers into Ethernet+IPv4 frame slabs and classifies them through
// LookupBytesBatch — the zero-allocation raw ingress path — emitting
// workload_replay_raw records so benchdiff tracks the raw path
// separately from the pre-parsed one.
//
// Machine-readable records append to the -json file once per model as a
// BENCH_workload.json array that cmd/benchdiff compares across runs, the
// same trajectory-tracking contract as BENCH_lookup.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"
	"time"

	repro "repro"
	"repro/internal/ctl"
	"repro/internal/ruleset"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

// options carries the parsed flag set.
type options struct {
	models   []workload.Model
	events   int
	duration time.Duration
	seed     int64

	family   ruleset.Family
	size     int
	rules    string
	zipf     float64
	pool     int
	update   float64
	swaps    int
	burstOn  time.Duration
	burstOff time.Duration
	shifts   int

	workers int
	batch   int

	backend   repro.Backend
	shards    int
	flowCache int
	state     int
	establish float64
	flood     float64
	raw       bool

	addr  string
	table string

	jsonOut string
}

// run executes one loadgen invocation; split from main for testing.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		modelF    = fs.String("model", "zipf", "traffic model: uniform, zipf, bursty, shift, conntrack — comma-separated list or 'all'")
		events    = fs.Int("events", 50000, "events per model run")
		duration  = fs.Duration("duration", 5*time.Second, "schedule horizon (arrival offsets span it)")
		seed      = fs.Int64("seed", 1, "generation seed")
		familyF   = fs.String("family", "acl", "generated ruleset family: acl, fw or ipc")
		size      = fs.Int("size", 1000, "generated ruleset size")
		rulesPath = fs.String("rules", "", "ClassBench ruleset file (overrides -family/-size)")
		zipfS     = fs.Float64("zipf", 1.2, "Zipf skew s for the skewed models (> 1)")
		pool      = fs.Int("pool", 4096, "distinct flows in the header pool")
		update    = fs.Float64("update-ratio", 0.02, "fraction of events that are rule updates")
		swaps     = fs.Int("swaps", 2, "whole-ruleset swap events per run")
		burstOn   = fs.Duration("burst-on", 50*time.Millisecond, "bursty model on-window")
		burstOff  = fs.Duration("burst-off", 50*time.Millisecond, "bursty model off-window")
		shifts    = fs.Int("shifts", 3, "hot-set migrations for the shift model")
		workers   = fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent lookup workers")
		batch     = fs.Int("batch", 16, "max overdue lookups drained per batched call (1 disables)")
		backendF  = fs.String("backend", "decomposition", "in-process backend (see repro.ParseBackend)")
		shards    = fs.Int("shards", 1, "in-process shard replicas")
		flowCache = fs.Int("flowcache", 0, "in-process flow-cache slots (0 disables)")
		state     = fs.Int("fwstate", 0, "in-process flow-state (conntrack) slots (0 disables)")
		establish = fs.Float64("establish", 0, "fraction of ruleset actions rewritten to allow-established [0,1]")
		flood     = fs.Float64("flood", 0, "conntrack model SYN-flood aggressor ratio [0,1]")
		raw       = fs.Bool("raw", false, "replay lookups as synthesized Ethernet frames through LookupBytesBatch (in-process only)")
		addr      = fs.String("addr", "", "replay against a live classifierd at this address instead of in-process")
		table     = fs.String("table", "", "remote table to replay into (default: the connection default)")
		jsonOut   = fs.String("json", "BENCH_workload.json", "machine-readable output file ('' disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := options{
		events: *events, duration: *duration, seed: *seed,
		size: *size, rules: *rulesPath, zipf: *zipfS, pool: *pool,
		update: *update, swaps: *swaps, burstOn: *burstOn, burstOff: *burstOff,
		shifts: *shifts, workers: *workers, batch: *batch,
		shards: *shards, flowCache: *flowCache, state: *state,
		establish: *establish, flood: *flood, raw: *raw,
		addr: *addr, table: *table, jsonOut: *jsonOut,
	}
	if o.raw && o.addr != "" {
		return fmt.Errorf("-raw replays in-process only; drop -addr")
	}
	if o.state != 0 && o.addr != "" {
		return fmt.Errorf("-fwstate composes the in-process engine; drop -addr (create a stateful remote table instead)")
	}
	if o.establish < 0 || o.establish > 1 {
		return fmt.Errorf("-establish %v, want [0,1]", o.establish)
	}
	var err error
	if o.models, err = parseModels(*modelF); err != nil {
		return err
	}
	if o.family, err = ruleset.ParseFamily(*familyF); err != nil {
		return err
	}
	if o.backend, err = repro.ParseBackend(*backendF); err != nil {
		return err
	}
	if o.workers < 1 {
		o.workers = 1
	}
	if o.events < 1 {
		return fmt.Errorf("-events %d, want >= 1", o.events)
	}

	rs, err := loadRuleset(o)
	if err != nil {
		return err
	}
	if o.establish > 0 {
		if rs, err = establishingRuleset(rs, o.establish); err != nil {
			return err
		}
	}
	records := make([]Record, 0, len(o.models))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\ttarget\tevents\telapsed\tev/s\tlookup p50\tp90\tp99\tp999\terrors")
	opErrors := 0
	for _, m := range o.models {
		rec, err := runModel(o, m, rs, tw)
		if err != nil {
			return fmt.Errorf("model %s: %w", m, err)
		}
		opErrors += rec.LookupErrors + rec.UpdateErrors
		records = append(records, rec)
	}
	tw.Flush()
	if o.jsonOut != "" {
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d records to %s\n", len(records), o.jsonOut)
	}
	// Per-op failures are tallied in the records (and printed above), but
	// a replay that errored is a failed run: CI smoke must go red, not
	// rely on someone reading the error column.
	if opErrors > 0 {
		return fmt.Errorf("replay finished with %d operation error(s); see the error columns above", opErrors)
	}
	return nil
}

// Record is one machine-readable replay measurement — the
// BENCH_workload.json schema cmd/benchdiff compares across runs.
type Record struct {
	Experiment   string  `json:"experiment"`
	Model        string  `json:"model"`
	Backend      string  `json:"backend"`
	Family       string  `json:"family"`
	Rules        int     `json:"rules"`
	Events       int     `json:"events"`
	Workers      int     `json:"workers"`
	Batch        int     `json:"batch"`
	Shards       int     `json:"shards"`
	CacheEntries int     `json:"cache_entries,omitempty"`
	StateEntries int     `json:"state_entries,omitempty"`
	Zipf         float64 `json:"zipf,omitempty"`
	UpdateRatio  float64 `json:"update_ratio,omitempty"`
	Swaps        int     `json:"swaps,omitempty"`
	FloodRatio   float64 `json:"flood_ratio,omitempty"`
	Remote       bool    `json:"remote,omitempty"`

	DurationSec  float64 `json:"duration_sec"`
	EventsPerSec float64 `json:"events_per_sec"`
	Lookups      int     `json:"lookups"`
	Updates      int     `json:"updates"`

	// Latency quantiles are in nanoseconds. The lookup quantiles are
	// deliberately NOT omitempty: a collapse to zero must stay a
	// reportable regression, not an absent field (the same contract as
	// lookupbench's cache_hit_rate).
	LookupP50Ns  float64 `json:"lookup_p50_ns"`
	LookupP90Ns  float64 `json:"lookup_p90_ns"`
	LookupP99Ns  float64 `json:"lookup_p99_ns"`
	LookupP999Ns float64 `json:"lookup_p999_ns"`
	LookupMaxNs  float64 `json:"lookup_max_ns"`
	UpdateP99Ns  float64 `json:"update_p99_ns,omitempty"`

	// StateHitRate is the flow-state hit fraction a stateful in-process
	// replay achieved (hits / (hits + misses)), 0 when stateless.
	StateHitRate float64 `json:"state_hit_rate,omitempty"`
	StateHits    uint64  `json:"state_hits,omitempty"`
	StateInstall uint64  `json:"state_installs,omitempty"`

	LookupErrors int    `json:"lookup_errors"`
	UpdateErrors int    `json:"update_errors"`
	Error        string `json:"error,omitempty"`
}

// runModel generates one schedule and replays it against the configured
// target, printing one summary row and returning the JSON record.
func runModel(o options, m workload.Model, rs *repro.RuleSet, tw *tabwriter.Writer) (Record, error) {
	sched, err := workload.Generate(rs, workload.Config{
		Model: m, Events: o.events, Duration: o.duration, Seed: o.seed,
		ZipfSkew: o.zipf, HeaderPool: o.pool, UpdateRatio: o.update,
		Swaps: o.swaps, Family: o.family,
		BurstOn: o.burstOn, BurstOff: o.burstOff, Shifts: o.shifts,
		FloodRatio: o.flood,
	})
	if err != nil {
		return Record{}, err
	}
	cfg := workload.ReplayConfig{Batch: o.batch}
	target := "in-process"
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if o.addr != "" {
		target = o.addr
		// One connection per worker plus the control lane: a ctl client
		// is sequential, so concurrency needs connection parallelism.
		for i := 0; i < o.workers+1; i++ {
			client, err := ctl.Dial(o.addr)
			if err != nil {
				return Record{}, err
			}
			closers = append(closers, client)
			if o.table != "" {
				if err := client.TableUse(o.table); err != nil {
					return Record{}, err
				}
			}
			t := workload.ClientTarget{C: client}
			if i == o.workers {
				cfg.Control = t
			} else {
				cfg.Lookups = append(cfg.Lookups, t)
			}
		}
	}
	var eng repro.Engine
	if o.addr == "" {
		eng, err = repro.New(repro.WithBackend(o.backend),
			repro.WithShards(o.shards), repro.WithFlowCache(o.flowCache),
			repro.WithFlowState(o.state, 0))
		if err != nil {
			return Record{}, err
		}
		t := workload.EngineTarget{Eng: eng}
		if o.raw {
			// The raw target reuses its frame slab, so each worker needs
			// its own; updates keep the shared pre-parsed control lane.
			target = "in-process raw"
			for i := 0; i < o.workers; i++ {
				cfg.Lookups = append(cfg.Lookups, &workload.RawEngineTarget{Eng: eng})
			}
		} else {
			for i := 0; i < o.workers; i++ {
				cfg.Lookups = append(cfg.Lookups, t)
			}
		}
		cfg.Control = t
	}
	rep, err := workload.Replay(sched, cfg)
	if err != nil {
		return Record{}, err
	}
	rec := newRecord(o, m, rs.Len(), rep)
	if ss, ok := eng.(interface{ StateStats() repro.FlowStateStats }); ok {
		st := ss.StateStats()
		rec.StateHits = st.Hits
		rec.StateInstall = st.Installs
		if total := st.Hits + st.Misses; total > 0 {
			rec.StateHitRate = float64(st.Hits) / float64(total)
		}
	}
	lk := rep.Ops[workload.OpLookup]
	if lk == nil {
		lk = &workload.OpStats{}
	}
	fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%.0f\t%v\t%v\t%v\t%v\t%d\n",
		m, target, o.events, rep.Elapsed.Round(time.Millisecond), rep.EventsPerSec(),
		lk.Latency.Quantile(0.50), lk.Latency.Quantile(0.90),
		lk.Latency.Quantile(0.99), lk.Latency.Quantile(0.999), rep.TotalErrors())
	if rep.FirstError != nil {
		fmt.Fprintf(tw, "\tfirst error: %v\n", rep.FirstError)
	}
	return rec, nil
}

// newRecord folds a replay report into the JSON record shape.
func newRecord(o options, m workload.Model, rules int, rep *workload.Report) Record {
	experiment := "workload_replay"
	if o.raw {
		// A distinct experiment name keeps raw-ingress records from being
		// compared against pre-parsed baselines in benchdiff.
		experiment = "workload_replay_raw"
	}
	if m == workload.ModelConntrack {
		// The conntrack model's latency profile is dominated by the
		// flow-state probe, so its records form their own trajectory.
		experiment = "workload_conntrack"
	}
	rec := Record{
		Experiment:  experiment,
		Model:       m.String(),
		Backend:     o.backend.String(),
		Family:      strings.ToLower(o.family.String()),
		Rules:       rules,
		Events:      o.events,
		Workers:     o.workers,
		Batch:       o.batch,
		Shards:      o.shards,
		Zipf:        o.zipf,
		UpdateRatio: o.update,
		Swaps:       o.swaps,
		FloodRatio:  o.flood,
		Remote:      o.addr != "",

		CacheEntries: o.flowCache,
		StateEntries: o.state,
		DurationSec:  rep.Elapsed.Seconds(),
		EventsPerSec: rep.EventsPerSec(),
	}
	if rec.Remote {
		rec.Backend = "remote"
		rec.Shards = 0
		rec.CacheEntries = 0
		rec.StateEntries = 0
	}
	var updates workload.Histogram
	for op, st := range rep.Ops {
		if op == workload.OpLookup {
			rec.Lookups = st.Count
			rec.LookupErrors = st.Errors
			rec.LookupP50Ns = float64(st.Latency.Quantile(0.50))
			rec.LookupP90Ns = float64(st.Latency.Quantile(0.90))
			rec.LookupP99Ns = float64(st.Latency.Quantile(0.99))
			rec.LookupP999Ns = float64(st.Latency.Quantile(0.999))
			rec.LookupMaxNs = float64(st.Latency.Max())
			continue
		}
		rec.Updates += st.Count
		rec.UpdateErrors += st.Errors
		updates.Merge(&st.Latency)
	}
	rec.UpdateP99Ns = float64(updates.Quantile(0.99))
	if rep.FirstError != nil {
		rec.Error = rep.FirstError.Error()
	}
	return rec
}

// parseModels decodes the -model flag: a comma-separated list or "all".
func parseModels(s string) ([]workload.Model, error) {
	if strings.EqualFold(strings.TrimSpace(s), "all") {
		return workload.Models(), nil
	}
	var out []workload.Model
	for _, part := range strings.Split(s, ",") {
		m, err := workload.ParseModel(part)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-model wants at least one model")
	}
	return out, nil
}

// loadRuleset builds the base ruleset from -rules or the generator.
func loadRuleset(o options) (*repro.RuleSet, error) {
	if o.rules != "" {
		f, err := os.Open(o.rules)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return repro.ParseRules(f)
	}
	return repro.GenerateRules(repro.GenConfig{Family: repro.Family(o.family), Size: o.size, Seed: o.seed})
}

// establishingRuleset rewrites a deterministic ratio of the ruleset's
// actions to allow-established so the stateful replay has rules that
// install flow state. Every ⌈1/ratio⌉-th rule flips, spreading
// establishers across priorities instead of clustering them.
func establishingRuleset(rs *repro.RuleSet, ratio float64) (*repro.RuleSet, error) {
	src := rs.Rules()
	rules := make([]repro.Rule, len(src))
	copy(rules, src)
	stride := int(1 / ratio)
	if stride < 1 {
		stride = 1
	}
	for i := range rules {
		if i%stride == 0 {
			rules[i].Action = repro.ActionEstablish
		}
	}
	return repro.NewRuleSet(rules)
}
