package main

import (
	"testing"

	repro "repro"
)

func TestParseHeader(t *testing.T) {
	h, err := parseHeader("10.1.2.3 192.168.0.1 1234 80 6")
	if err != nil {
		t.Fatal(err)
	}
	if h.SrcIP != 0x0a010203 || h.DstIP != 0xc0a80001 || h.SrcPort != 1234 || h.DstPort != 80 || h.Proto != 6 {
		t.Errorf("parsed %+v", h)
	}
	bad := []string{
		"10.1.2.3 192.168.0.1 1234 80",         // missing proto
		"10.1.2 192.168.0.1 1234 80 6",         // short IP
		"10.1.2.3 192.168.0.1 123456 80 6",     // port overflow
		"10.1.2.3 192.168.0.1 1234 80 600",     // proto overflow
		"10.1.2.3 192.168.0.256 1234 80 6",     // octet overflow
		"10.1.2.3 192.168.0.1 1234 80 6 extra", // trailing field
	}
	for _, line := range bad {
		if _, err := parseHeader(line); err == nil {
			t.Errorf("parseHeader(%q) should fail", line)
		}
	}
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("bst", "segtree", "hash")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LPM != repro.LPMBinarySearchTree || cfg.Range != repro.RangeSegmentTree || cfg.Exact != repro.ExactHashTable {
		t.Errorf("cfg = %+v", cfg)
	}
	if _, err := buildConfig("nope", "bank", "direct"); err == nil {
		t.Error("bad lpm should fail")
	}
	if _, err := buildConfig("mbt", "nope", "direct"); err == nil {
		t.Error("bad range should fail")
	}
	if _, err := buildConfig("mbt", "bank", "nope"); err == nil {
		t.Error("bad exact should fail")
	}
}
