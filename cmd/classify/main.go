// Command classify loads a ClassBench-format ruleset and classifies
// 5-tuple headers against it with a chosen engine configuration, printing
// the matched rule, action and hardware cost per header.
//
// Headers are read one per line as "srcIP dstIP srcPort dstPort proto"
// (the rulegen -trace output format) from a file or stdin.
//
// Usage:
//
//	rulegen -family acl -size 1000 -o acl.txt -trace 10 -trace-out t.phs
//	classify -rules acl.txt -lpm mbt < t.phs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rule"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ClassBench ruleset file (required)")
		input     = flag.String("in", "-", "header input file (- for stdin)")
		lpmAlgo   = flag.String("lpm", "mbt", "LPM engine: mbt, bst or amtrie")
		rangeAlgo = flag.String("range", "bank", "range engine: bank, segtree or rangetree")
		exactAlgo = flag.String("exact", "direct", "exact engine: direct or hash")
		optimize  = flag.Bool("optimize", true, "apply decision-controller ruleset optimization")
		quiet     = flag.Bool("q", false, "suppress per-header output, print summary only")
	)
	flag.Parse()
	if *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	cfg, err := buildConfig(*lpmAlgo, *rangeAlgo, *exactAlgo)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*rulesPath)
	if err != nil {
		fatal(err)
	}
	set, err := rule.ParseSet(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("parse ruleset: %w", err))
	}
	if *optimize {
		opt, removed, err := core.OptimizeSet(set)
		if err != nil {
			fatal(err)
		}
		if len(removed) > 0 {
			fmt.Fprintf(os.Stderr, "classify: optimizer removed %d shadowed rules\n", len(removed))
		}
		set = opt
	}
	cls, _, err := core.NewV4(cfg, set)
	if err != nil {
		fatal(err)
	}

	in := io.Reader(os.Stdin)
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	lineno, matched, total := 0, 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h, err := parseHeader(line)
		if err != nil {
			fatal(fmt.Errorf("line %d: %w", lineno, err))
		}
		res, cost := cls.Lookup(core.V4Header(h))
		total++
		if res.Found {
			matched++
			if !*quiet {
				fmt.Fprintf(w, "%s -> rule %d (prio %d, %v) [%d cycles, %d probes]\n",
					line, res.RuleID, res.Priority, res.Action, cost.Cycles, res.Probes)
			}
		} else if !*quiet {
			fmt.Fprintf(w, "%s -> no match (discard) [%d cycles]\n", line, cost.Cycles)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	tp := cls.Throughput()
	fmt.Fprintf(w, "# %d headers, %d matched (%.1f%%); modeled %.2f Mpps / %.2f Gbps\n",
		total, matched, pct(matched, total), tp.Mpps, tp.Gbps)
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func buildConfig(lpmAlgo, rangeAlgo, exactAlgo string) (core.Config, error) {
	var cfg core.Config
	switch strings.ToLower(lpmAlgo) {
	case "mbt":
		cfg.LPM = core.LPMMultiBitTrie
	case "bst":
		cfg.LPM = core.LPMBinarySearchTree
	case "amtrie":
		cfg.LPM = core.LPMAMTrie
	default:
		return cfg, fmt.Errorf("unknown LPM engine %q", lpmAlgo)
	}
	switch strings.ToLower(rangeAlgo) {
	case "bank":
		cfg.Range = core.RangeRegisterBank
	case "segtree":
		cfg.Range = core.RangeSegmentTree
	case "rangetree":
		cfg.Range = core.RangeRangeTree
	default:
		return cfg, fmt.Errorf("unknown range engine %q", rangeAlgo)
	}
	switch strings.ToLower(exactAlgo) {
	case "direct":
		cfg.Exact = core.ExactDirectIndex
	case "hash":
		cfg.Exact = core.ExactHashTable
	default:
		return cfg, fmt.Errorf("unknown exact engine %q", exactAlgo)
	}
	return cfg, nil
}

func parseHeader(line string) (rule.Header, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return rule.Header{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	src, err := parseIPv4(fields[0])
	if err != nil {
		return rule.Header{}, err
	}
	dst, err := parseIPv4(fields[1])
	if err != nil {
		return rule.Header{}, err
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("source port %q", fields[2])
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return rule.Header{}, fmt.Errorf("destination port %q", fields[3])
	}
	pr, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return rule.Header{}, fmt.Errorf("protocol %q", fields[4])
	}
	return rule.Header{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr),
	}, nil
}

func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q", s)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
