// Command classify loads a ClassBench-format ruleset and classifies
// 5-tuple headers against it with a chosen engine backend, printing the
// matched rule, action and (for the decomposition backend) hardware cost
// per header.
//
// Headers are read one per line as "srcIP dstIP srcPort dstPort proto"
// (the rulegen -trace output format) from a file or stdin.
//
// Usage:
//
//	rulegen -family acl -size 1000 -o acl.txt -trace 10 -trace-out t.phs
//	classify -rules acl.txt -lpm mbt < t.phs
//	classify -rules acl.txt -backend tss < t.phs
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	repro "repro"
)

func main() {
	var (
		rulesPath = flag.String("rules", "", "ClassBench ruleset file (required)")
		input     = flag.String("in", "-", "header input file (- for stdin)")
		backend   = flag.String("backend", "decomposition", "engine backend: decomposition, linear, tcam, rfc, hicuts, hypercuts, crossproduct, dcfl, bv, abv or tss")
		lpmAlgo   = flag.String("lpm", "mbt", "decomposition LPM engine: mbt, bst or amtrie")
		rangeAlgo = flag.String("range", "bank", "decomposition range engine: bank, segtree or rangetree")
		exactAlgo = flag.String("exact", "direct", "decomposition exact engine: direct or hash")
		optimize  = flag.Bool("optimize", true, "apply decision-controller ruleset optimization")
		quiet     = flag.Bool("q", false, "suppress per-header output, print summary only")
	)
	flag.Parse()
	if *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	be, err := repro.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	cfg, err := buildConfig(*lpmAlgo, *rangeAlgo, *exactAlgo)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*rulesPath)
	if err != nil {
		fatal(err)
	}
	set, err := repro.ParseRules(f)
	f.Close()
	if err != nil {
		fatal(fmt.Errorf("parse ruleset: %w", err))
	}
	opts := []repro.Option{
		repro.WithBackend(be),
		repro.WithConfig(cfg),
		repro.WithRules(set),
	}
	if *optimize {
		opts = append(opts, repro.WithOptimize())
	}
	eng, err := repro.New(opts...)
	if err != nil {
		fatal(err)
	}
	if n := set.Len() - eng.Len(); n > 0 {
		fmt.Fprintf(os.Stderr, "classify: optimizer removed %d shadowed rules\n", n)
	}

	in := io.Reader(os.Stdin)
	if *input != "" && *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	lineno, matched, total := 0, 0, 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		h, err := parseHeader(line)
		if err != nil {
			fatal(fmt.Errorf("line %d: %w", lineno, err))
		}
		res, cost := eng.Lookup(h)
		total++
		if res.Found {
			matched++
			if !*quiet {
				fmt.Fprintf(w, "%s -> rule %d (prio %d, %v) [%d cycles, %d probes]\n",
					line, res.RuleID, res.Priority, res.Action, cost.Cycles, res.Probes)
			}
		} else if !*quiet {
			fmt.Fprintf(w, "%s -> no match (discard) [%d cycles]\n", line, cost.Cycles)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(w, "# %s backend: %d headers, %d matched (%.1f%%)\n",
		eng.Backend(), total, matched, pct(matched, total))
	// Only the decomposition backend models hardware throughput.
	if cls, ok := eng.(interface{ ModelThroughput() repro.Throughput }); ok {
		tp := cls.ModelThroughput()
		fmt.Fprintf(w, "# modeled %.2f Mpps / %.2f Gbps at 200 MHz\n", tp.Mpps, tp.Gbps)
	}
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func buildConfig(lpmAlgo, rangeAlgo, exactAlgo string) (repro.Config, error) {
	var cfg repro.Config
	switch strings.ToLower(lpmAlgo) {
	case "mbt":
		cfg.LPM = repro.LPMMultiBitTrie
	case "bst":
		cfg.LPM = repro.LPMBinarySearchTree
	case "amtrie":
		cfg.LPM = repro.LPMAMTrie
	default:
		return cfg, fmt.Errorf("unknown LPM engine %q", lpmAlgo)
	}
	switch strings.ToLower(rangeAlgo) {
	case "bank":
		cfg.Range = repro.RangeRegisterBank
	case "segtree":
		cfg.Range = repro.RangeSegmentTree
	case "rangetree":
		cfg.Range = repro.RangeRangeTree
	default:
		return cfg, fmt.Errorf("unknown range engine %q", rangeAlgo)
	}
	switch strings.ToLower(exactAlgo) {
	case "direct":
		cfg.Exact = repro.ExactDirectIndex
	case "hash":
		cfg.Exact = repro.ExactHashTable
	default:
		return cfg, fmt.Errorf("unknown exact engine %q", exactAlgo)
	}
	return cfg, nil
}

func parseHeader(line string) (repro.Header, error) {
	fields := strings.Fields(line)
	if len(fields) != 5 {
		return repro.Header{}, fmt.Errorf("want 5 fields, got %d", len(fields))
	}
	src, err := parseIPv4(fields[0])
	if err != nil {
		return repro.Header{}, err
	}
	dst, err := parseIPv4(fields[1])
	if err != nil {
		return repro.Header{}, err
	}
	sp, err := strconv.ParseUint(fields[2], 10, 16)
	if err != nil {
		return repro.Header{}, fmt.Errorf("source port %q", fields[2])
	}
	dp, err := strconv.ParseUint(fields[3], 10, 16)
	if err != nil {
		return repro.Header{}, fmt.Errorf("destination port %q", fields[3])
	}
	pr, err := strconv.ParseUint(fields[4], 10, 8)
	if err != nil {
		return repro.Header{}, fmt.Errorf("protocol %q", fields[4])
	}
	return repro.Header{
		SrcIP: src, DstIP: dst,
		SrcPort: uint16(sp), DstPort: uint16(dp), Proto: uint8(pr),
	}, nil
}

func parseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		b, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("address %q", s)
		}
		addr = addr<<8 | uint32(b)
	}
	return addr, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "classify:", err)
	os.Exit(1)
}
