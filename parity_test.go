package repro

import (
	"reflect"
	"testing"
)

// v4OnlyMethods are Classifier methods with no IPv6 counterpart by
// design. Keep this list justified: anything added here must genuinely
// not generalize to 128-bit fields.
var v4OnlyMethods = map[string]string{
	// RuleSet is the v4 ClassBench container; the v6 engine bulk-loads
	// through Replace instead.
	"BuildFromSet": "RuleSet bulk-load is IPv4-specific",
}

// v4ToV6Type maps the IPv4 surface types onto their IPv6 counterparts
// for signature comparison.
func v4ToV6Type(t reflect.Type) reflect.Type {
	switch t {
	case reflect.TypeOf(Header{}):
		return reflect.TypeOf(Header6{})
	case reflect.TypeOf(Rule{}):
		return reflect.TypeOf(Rule6{})
	case reflect.TypeOf([]Header{}):
		return reflect.TypeOf([]Header6{})
	case reflect.TypeOf([]Rule{}):
		return reflect.TypeOf([]Rule6{})
	}
	return t
}

// TestClassifier6Parity walks the exported method set of Classifier via
// reflection and requires Classifier6 to offer every method with the
// equivalent signature (Header->Header6, Rule->Rule6), so the two
// address families cannot silently drift apart as the API grows. New
// intentionally v4-only methods must be added to v4OnlyMethods with a
// reason.
func TestClassifier6Parity(t *testing.T) {
	t4 := reflect.TypeOf(&Classifier{})
	t6 := reflect.TypeOf(&Classifier6{})
	for i := 0; i < t4.NumMethod(); i++ {
		m4 := t4.Method(i)
		if reason, ok := v4OnlyMethods[m4.Name]; ok {
			if _, has := t6.MethodByName(m4.Name); has {
				t.Errorf("%s is allowlisted as v4-only (%s) but Classifier6 has it; drop the allowlist entry", m4.Name, reason)
			}
			continue
		}
		m6, ok := t6.MethodByName(m4.Name)
		if !ok {
			t.Errorf("Classifier6 lacks %s%s", m4.Name, m4.Type.String()[4:])
			continue
		}
		f4, f6 := m4.Type, m6.Type
		if f4.NumIn() != f6.NumIn() || f4.NumOut() != f6.NumOut() {
			t.Errorf("%s: arity mismatch: v4 %s vs v6 %s", m4.Name, f4, f6)
			continue
		}
		for j := 1; j < f4.NumIn(); j++ { // skip the receiver
			if want, got := v4ToV6Type(f4.In(j)), f6.In(j); want != got {
				t.Errorf("%s: arg %d: v4 %s maps to %s, v6 has %s", m4.Name, j, f4.In(j), want, got)
			}
		}
		for j := 0; j < f4.NumOut(); j++ {
			if want, got := v4ToV6Type(f4.Out(j)), f6.Out(j); want != got {
				t.Errorf("%s: result %d: v4 %s maps to %s, v6 has %s", m4.Name, j, f4.Out(j), want, got)
			}
		}
	}
}

// TestClassifier6ParityBehavior spot-checks the newly mirrored methods
// actually work against a live v6 engine, not just typecheck.
func TestClassifier6ParityBehavior(t *testing.T) {
	c, err := New6()
	if err != nil {
		t.Fatal(err)
	}
	if c.Backend() != BackendDecomposition {
		t.Errorf("Backend() = %v, want decomposition", c.Backend())
	}
	if !c.IncrementalUpdate() {
		t.Error("IncrementalUpdate() = false, want true")
	}
	r := Rule6{ID: 1, Priority: 1, Action: ActionPermit}
	r.SrcIP.Len = 0
	r.SrcPort = FullPortRange()
	r.DstPort = FullPortRange()
	if _, err := c.Insert(r); err != nil {
		t.Fatal(err)
	}
	hs := []Header6{{SrcPort: 999, DstPort: 80, Proto: 6}}
	res, cost := c.LookupBatchCost(hs)
	if len(res) != 1 || !res[0].Found || res[0].RuleID != 1 {
		t.Errorf("LookupBatchCost results %+v", res)
	}
	if cost.Cycles <= 0 {
		t.Errorf("LookupBatchCost cost %+v, want positive cycles", cost)
	}
	if st := c.Stats(); st.Probes == 0 {
		t.Errorf("Stats after lookup %+v, want probes > 0", st)
	}
	c.ResetStats()
	if st := c.Stats(); st.Probes != 0 {
		t.Errorf("Stats after ResetStats %+v, want zero probes", st)
	}
	if st := c.Stats(); st.Rules != 1 {
		t.Errorf("ResetStats cleared rule population: %+v", st)
	}
	if cyc := c.ModelLookupCycles(100); cyc <= 0 {
		t.Errorf("ModelLookupCycles(100) = %v, want positive", cyc)
	}
}
