package repro_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	repro "repro"
)

// conformanceCorpus returns the rule/trace workloads every backend must
// agree on with the linear oracle. Sizes stay modest so the baselines
// with super-linear precomputation (RFC, cross-producting, BV) build in
// test time without tripping their storage bounds.
func conformanceCorpus(t *testing.T) map[string]*repro.RuleSet {
	t.Helper()
	corpus := make(map[string]*repro.RuleSet)
	for name, cfg := range map[string]repro.GenConfig{
		"acl": {Family: repro.ACL, Size: 120, Seed: 11},
		"fw":  {Family: repro.FW, Size: 100, Seed: 12},
		"ipc": {Family: repro.IPC, Size: 100, Seed: 13},
	} {
		rs, err := repro.GenerateRules(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		corpus[name] = rs
	}
	edge, err := repro.NewRuleSet([]repro.Rule{
		{ // full wildcard
			ID: 1, Priority: 5,
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto: repro.AnyProto(), Action: repro.ActionDeny,
		},
		{ // host-specific, overlapping the wildcard
			ID: 2, Priority: 1,
			SrcIP:   repro.MustParsePrefix("10.0.0.1/32"),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
			Proto: repro.ExactProto(repro.ProtoTCP), Action: repro.ActionPermit,
		},
		{ // nested prefix between the two
			ID: 3, Priority: 2,
			SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
			SrcPort: repro.PortRange{Lo: 1024, Hi: 60000}, DstPort: repro.FullPortRange(),
			Proto: repro.ExactProto(repro.ProtoUDP), Action: repro.ActionQueue,
		},
		{ // boundary port range
			ID: 4, Priority: 3,
			SrcPort: repro.FullPortRange(), DstPort: repro.PortRange{Lo: 0, Hi: 0},
			Proto: repro.AnyProto(), Action: repro.ActionCount,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	corpus["edge"] = edge
	return corpus
}

func corpusTrace(t *testing.T, rs *repro.RuleSet, n int, seed int64) []repro.Header {
	t.Helper()
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: n, HitRatio: 0.8, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// checkAgainstOracle compares an engine against the linear-scan oracle on
// a trace. Agreement is on identity of the HPMR, not just the verdict.
func checkAgainstOracle(t *testing.T, eng repro.Engine, rs *repro.RuleSet, trace []repro.Header) {
	t.Helper()
	batch := eng.LookupBatch(trace)
	if len(batch) != len(trace) {
		t.Fatalf("LookupBatch returned %d results for %d headers", len(batch), len(trace))
	}
	for i, h := range trace {
		want, ok := rs.Match(h)
		got := batch[i]
		if got.Found != ok || (ok && got.RuleID != want.ID) {
			t.Fatalf("header %d %+v: engine (%d, found=%v), oracle (%d, found=%v)",
				i, h, got.RuleID, got.Found, want.ID, ok)
		}
		single, _ := eng.Lookup(h)
		if single.Found != got.Found || single.RuleID != got.RuleID {
			t.Fatalf("header %d: Lookup %+v disagrees with LookupBatch %+v", i, single, got)
		}
	}
}

// TestEngineConformanceDifferential runs every backend through the same
// rule/trace corpus against the rule.Set linear oracle.
func TestEngineConformanceDifferential(t *testing.T) {
	corpus := conformanceCorpus(t)
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for name, rs := range corpus {
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(rs))
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				if eng.Backend() != b {
					t.Fatalf("Backend() = %v, want %v", eng.Backend(), b)
				}
				if eng.Len() != rs.Len() {
					t.Fatalf("%s: Len = %d, want %d", name, eng.Len(), rs.Len())
				}
				if eng.Memory().TotalBytes() < 0 {
					t.Fatalf("%s: negative memory", name)
				}
				checkAgainstOracle(t, eng, rs, corpusTrace(t, rs, 300, 101))
			}
		})
	}
}

// TestEngineConformanceEmpty covers the empty-ruleset edge cases: a fresh
// engine matches nothing and supports delete-to-empty.
func TestEngineConformanceEmpty(t *testing.T) {
	probe := repro.Header{SrcIP: 0x0a000001, DstIP: 0x08080808, SrcPort: 1234, DstPort: 80, Proto: repro.ProtoTCP}
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(repro.WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			if eng.Len() != 0 {
				t.Fatalf("fresh engine Len = %d", eng.Len())
			}
			if res, _ := eng.Lookup(probe); res.Found {
				t.Fatalf("empty engine matched: %+v", res)
			}
			if out := eng.LookupBatch(nil); len(out) != 0 {
				t.Fatalf("empty batch returned %d results", len(out))
			}
			if _, err := eng.Delete(7); err == nil {
				t.Fatal("Delete on empty engine should fail")
			}
			// Insert one rule, delete it, and verify the engine drains
			// back to matching nothing.
			r := repro.Rule{
				ID: 9, Priority: 1,
				SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
				SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
				Proto: repro.ExactProto(repro.ProtoTCP), Action: repro.ActionPermit,
			}
			if _, err := eng.Insert(r); err != nil {
				t.Fatal(err)
			}
			if res, _ := eng.Lookup(probe); !res.Found || res.RuleID != 9 {
				t.Fatalf("after insert: %+v", res)
			}
			if _, err := eng.Delete(9); err != nil {
				t.Fatal(err)
			}
			if res, _ := eng.Lookup(probe); res.Found {
				t.Fatalf("after delete-to-empty: %+v", res)
			}
			if eng.Len() != 0 {
				t.Fatalf("Len = %d after delete-to-empty", eng.Len())
			}
		})
	}
}

// TestEngineConformanceIncremental drives every backend through the same
// incremental insert/delete schedule, differential-checking along the
// way. Backends without native incremental update must behave
// identically through their transparent rebuild.
func TestEngineConformanceIncremental(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 80, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rules := rs.Rules()
	trace := corpusTrace(t, rs, 150, 102)
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(repro.WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			live := make([]repro.Rule, 0, len(rules))
			oracle := func() *repro.RuleSet {
				s, err := repro.NewRuleSet(append([]repro.Rule(nil), live...))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			for i, r := range rules {
				cost, err := eng.Insert(r)
				if err != nil {
					t.Fatalf("insert %d: %v", r.ID, err)
				}
				if cost.Cycles <= 0 {
					t.Fatalf("insert %d: non-positive cycle cost %+v", r.ID, cost)
				}
				live = append(live, r)
				if i%20 == 19 {
					checkAgainstOracle(t, eng, oracle(), trace)
				}
			}
			// Duplicate insert must fail without corrupting state.
			if _, err := eng.Insert(rules[0]); err == nil {
				t.Fatal("duplicate insert should fail")
			}
			checkAgainstOracle(t, eng, oracle(), trace)
			// Delete every other rule.
			for i := 0; i < len(rules); i += 2 {
				if _, err := eng.Delete(rules[i].ID); err != nil {
					t.Fatalf("delete %d: %v", rules[i].ID, err)
				}
			}
			kept := live[:0]
			for i, r := range live {
				if i%2 == 1 {
					kept = append(kept, r)
				}
			}
			live = kept
			if eng.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(live))
			}
			checkAgainstOracle(t, eng, oracle(), trace)
		})
	}
}

// TestEngineConformanceRuleContract verifies the shared Engine rule
// contract: rules without explicit identity are rejected uniformly.
func TestEngineConformanceRuleContract(t *testing.T) {
	for _, b := range repro.Backends() {
		eng, err := repro.New(repro.WithBackend(b))
		if err != nil {
			t.Fatal(err)
		}
		base := repro.Rule{
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto: repro.AnyProto(), Action: repro.ActionPermit,
		}
		noID := base
		noID.Priority = 1
		if _, err := eng.Insert(noID); err == nil {
			t.Errorf("%v: insert without ID should fail", b)
		}
		noPrio := base
		noPrio.ID = 1
		if _, err := eng.Insert(noPrio); err == nil {
			t.Errorf("%v: insert without priority should fail", b)
		}
		if eng.Len() != 0 {
			t.Errorf("%v: rejected inserts must not install rules", b)
		}
	}
}

// TestEngineConcurrentChurn runs concurrent lookups against every
// backend while the writer inserts and deletes — the acceptance gate for
// the concurrency redesign, meaningful under -race.
func TestEngineConcurrentChurn(t *testing.T) {
	pool, err := repro.GenerateRules(repro.GenConfig{Family: repro.IPC, Size: 60, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	rules := pool.Rules()
	trace := corpusTrace(t, pool, 64, 103)
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(repro.WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			var stop atomic.Bool
			var lookups atomic.Int64
			var wg sync.WaitGroup
			for r := 0; r < 2; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(int64(500 + r)))
					for !stop.Load() {
						h := trace[rnd.Intn(len(trace))]
						res, _ := eng.Lookup(h)
						if res.Found && res.RuleID == 0 {
							t.Error("found result with zero rule ID")
							return
						}
						_ = eng.LookupBatch(trace[:8])
						lookups.Add(9)
					}
				}()
			}
			rnd := rand.New(rand.NewSource(44))
			live := make([]int, 0, len(rules))
			next := 0
			for op := 0; op < 150; op++ {
				if next < len(rules) && (len(live) == 0 || rnd.Intn(3) > 0) {
					if _, err := eng.Insert(rules[next]); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					live = append(live, rules[next].ID)
					next++
					continue
				}
				if len(live) == 0 {
					break
				}
				i := rnd.Intn(len(live))
				if _, err := eng.Delete(live[i]); err != nil {
					t.Fatalf("op %d delete: %v", op, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			for lookups.Load() == 0 {
				runtime.Gosched()
			}
			stop.Store(true)
			wg.Wait()
			if eng.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(live))
			}
		})
	}
}
