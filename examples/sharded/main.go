// Command sharded demonstrates the sharded multi-table serving layer:
// a classifierd-style daemon hosting two named tables — a 4-way sharded
// decomposition table and a linear table — driven over TCP with the
// batched ctl protocol (pipelined BULK insert, one-round-trip MLOOKUP).
package main

import (
	"fmt"
	"log"
	"net"

	repro "repro"
	"repro/internal/ctl"
)

func main() {
	// The daemon side: the default "main" table is a 4-way sharded
	// decomposition engine; rules hash-partition across the replicas
	// and batch lookups fan out to all of them in parallel.
	eng, err := repro.New(repro.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	srv := ctl.NewServer(eng)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Shutdown()

	// The control side: generate a ruleset and pipeline it through one
	// BULK transfer instead of per-rule round trips.
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 500, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	client, err := ctl.Dial(l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	cycles, err := client.BulkInsert(rs.Rules())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk-loaded %d rules in %d modeled cycles\n", rs.Len(), cycles)

	// A second tenant: a linear-search table created over the wire.
	if err := client.TableCreate("audit", "linear", 1); err != nil {
		log.Fatal(err)
	}
	tables, err := client.Tables()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		fmt.Printf("table %-6s backend=%-13s shards=%d rules=%d\n", t.Name, t.Backend, t.Shards, t.Rules)
	}

	// Classify a whole trace batch in one round trip; the daemon runs
	// it as a single LookupBatch across the shard replicas.
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 32, HitRatio: 0.9, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	results, err := client.MLookup(trace)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, r := range results {
		if r.Found {
			hits++
		}
	}
	fmt.Printf("MLOOKUP classified %d headers in one round trip: %d hits\n", len(results), hits)
}
