// Command flowcache demonstrates the exact-match flow cache on skewed
// traffic: the same Zipf-distributed trace — the flow popularity shape
// of real networks, where a few elephant flows carry most packets — is
// classified by a bare decomposition engine and by the same engine
// behind repro.WithFlowCache. The cached run serves the hot flows from
// one lock-free hash probe and reports its hit rate; a rule update then
// invalidates the cache, and the next pass refills it against the new
// ruleset.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	repro "repro"
)

func main() {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 2000, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	base, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 4096, HitRatio: 0.9, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}
	// Resample the trace with Zipf(1.2) flow popularity: index 0 is the
	// hottest flow.
	rng := rand.New(rand.NewSource(13))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(base)-1))
	trace := make([]repro.Header, 200000)
	for i := range trace {
		trace[i] = base[zipf.Uint64()]
	}

	run := func(eng repro.Engine) time.Duration {
		start := time.Now()
		for _, h := range trace {
			eng.Lookup(h)
		}
		return time.Since(start)
	}

	bare, err := repro.New(repro.WithRules(rs))
	if err != nil {
		log.Fatal(err)
	}
	cached, err := repro.New(repro.WithRules(rs), repro.WithFlowCache(1<<16))
	if err != nil {
		log.Fatal(err)
	}

	run(bare) // warm both engines
	run(cached)
	bareTime := run(bare)
	cachedTime := run(cached)

	cs := cached.(interface{ CacheStats() repro.FlowCacheStats }).CacheStats()
	fmt.Printf("uncached: %5.0f ns/lookup\n", float64(bareTime.Nanoseconds())/float64(len(trace)))
	fmt.Printf("cached:   %5.0f ns/lookup (hit rate %.1f%%, %d slots)\n",
		float64(cachedTime.Nanoseconds())/float64(len(trace)), 100*cs.HitRate(), cs.Entries)
	fmt.Printf("speedup:  %.1fx on Zipf(1.2) traffic\n",
		float64(bareTime.Nanoseconds())/float64(cachedTime.Nanoseconds()))

	// A rule update invalidates every cached verdict atomically: the
	// wildcard deny below must win immediately, never the stale verdict.
	if _, err := cached.Insert(repro.Rule{
		ID: 1 << 20, Priority: 1,
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto: repro.AnyProto(), Action: repro.ActionDeny,
	}); err != nil {
		log.Fatal(err)
	}
	res, _ := cached.Lookup(trace[0])
	fmt.Printf("after wildcard-deny insert: hottest flow -> %v (rule %d)\n", res.Action, res.RuleID)
}
