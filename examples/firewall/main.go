// Firewall offload: load a 10K ACL ruleset (the paper's headline
// workload), optimize it in the decision controller, classify a large
// packet header set, and report the Section IV.D throughput figures for
// both LPM modes.
//
//	go run ./examples/firewall
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	rules, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 10000, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	optimized, removed, err := repro.OptimizeRules(rules)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ACL-10K loaded; optimizer removed %d shadowed rules\n", len(removed))

	trace, err := repro.GenerateTrace(optimized, repro.TraceConfig{
		Size: 50000, HitRatio: 0.95, Locality: 0.5, Seed: 43,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		cfg  repro.Config
	}{
		{"MBT (high throughput)", repro.Config{LPM: repro.LPMMultiBitTrie}},
		{"BST (low memory)", repro.Config{LPM: repro.LPMBinarySearchTree}},
	} {
		eng, err := repro.New(repro.WithConfig(mode.cfg), repro.WithRules(optimized))
		if err != nil {
			log.Fatal(err)
		}
		// The default backend is the decomposition architecture, which
		// carries the full hardware model.
		cls := eng.(*repro.Classifier)
		permits, denies, misses := 0, 0, 0
		// Classify in batches: each batch runs against one consistent
		// RCU snapshot and reuses the per-field label buffers.
		const batch = 256
		for off := 0; off < len(trace); off += batch {
			end := off + batch
			if end > len(trace) {
				end = len(trace)
			}
			for _, res := range cls.LookupBatch(trace[off:end]) {
				switch {
				case !res.Found:
					misses++
				case res.Action == repro.ActionPermit:
					permits++
				default:
					denies++
				}
			}
		}
		st := cls.Stats()
		tp := cls.ModelThroughput()
		fmt.Printf("\n[%s]\n", mode.name)
		fmt.Printf("  verdicts: %d permit / %d deny / %d no-match\n", permits, denies, misses)
		fmt.Printf("  labels per field: %v (max list %d, overflows %d)\n",
			st.Labels, st.MaxListLen, st.HardwareOverflows)
		fmt.Printf("  hardware memory: %.1f KiB\n", float64(cls.Memory().TotalBytes())/1024)
		fmt.Printf("  modeled: %.2f cycles/packet -> %.2f Mpps, %.2f Gbps\n",
			tp.CyclesPerPacket, tp.Mpps, tp.Gbps)
	}
}
