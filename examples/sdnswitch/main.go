// SDN flow-table churn: a router with per-flow queues needs very frequent
// rule updates (Section IV.B). This example installs a base ruleset, then
// streams per-flow inserts and deletes through the incremental update
// path, comparing the hardware update cost of the MBT and BST modes —
// the trade-off Fig. 3 quantifies.
//
// A data-plane goroutine classifies traffic concurrently the whole time:
// the engine's RCU snapshots mean the lookup path never blocks on the
// control-plane churn.
//
//	go run ./examples/sdnswitch
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	repro "repro"
)

const (
	baseRules = 2000
	flowOps   = 5000
)

func main() {
	base, err := repro.GenerateRules(repro.GenConfig{Family: repro.IPC, Size: baseRules, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		cfg  repro.Config
	}{
		// Per-flow rules carry thousands of distinct exact ports, beyond
		// a hardware register bank's capacity — the decision controller
		// therefore selects the segment tree for the port fields. This is
		// exactly the per-application algorithm selection the paper's
		// programmable architecture exists for.
		{"MBT", repro.Config{LPM: repro.LPMMultiBitTrie, Range: repro.RangeSegmentTree}},
		{"BST", repro.Config{LPM: repro.LPMBinarySearchTree, Range: repro.RangeSegmentTree}},
	} {
		cls, err := repro.New(repro.WithConfig(mode.cfg), repro.WithRules(base))
		if err != nil {
			log.Fatal(err)
		}

		// Data plane: classify continuously while the control plane
		// churns below. Lookups are lock-free snapshot reads.
		var stopLookups atomic.Bool
		var classified atomic.Int64
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			trnd := rand.New(rand.NewSource(7))
			var batch [64]repro.Header
			for !stopLookups.Load() {
				for i := range batch {
					batch[i] = repro.Header{
						SrcIP: trnd.Uint32(), DstIP: trnd.Uint32(),
						SrcPort: uint16(trnd.Intn(1 << 16)),
						DstPort: uint16([]int{80, 443, 53}[trnd.Intn(3)]),
						Proto:   repro.ProtoTCP,
					}
				}
				cls.LookupBatch(batch[:])
				classified.Add(int64(len(batch)))
			}
		}()

		// Streaming per-flow updates: install an exact 5-tuple rule when
		// a flow arrives, remove it when the flow ends.
		rnd := rand.New(rand.NewSource(99))
		var insertCycles, deleteCycles, lines int
		live := make([]int, 0, flowOps)
		nextID := 1 << 20
		for op := 0; op < flowOps; op++ {
			if len(live) > 0 && rnd.Intn(3) == 0 {
				// Flow ended: delete its rule.
				i := rnd.Intn(len(live))
				cost, err := cls.Delete(live[i])
				if err != nil {
					log.Fatal(err)
				}
				deleteCycles += cost.Cycles
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			flow := repro.Rule{
				ID:       nextID,
				Priority: nextID, // per-flow rules at low priority
				SrcIP:    exactHost(rnd.Uint32()),
				DstIP:    exactHost(rnd.Uint32()),
				SrcPort:  repro.ExactPort(uint16(1024 + rnd.Intn(60000))),
				DstPort:  repro.ExactPort(uint16([]int{80, 443, 53}[rnd.Intn(3)])),
				Proto:    repro.ExactProto(repro.ProtoTCP),
				Action:   repro.ActionQueue,
			}
			nextID++
			cost, err := cls.Insert(flow)
			if err != nil {
				log.Fatal(err)
			}
			insertCycles += cost.Cycles
			lines += cost.Writes
			live = append(live, flow.ID)
		}

		stopLookups.Store(true)
		wg.Wait()

		fmt.Printf("[%s mode] %d flow ops on top of %d base rules\n", mode.name, flowOps, baseRules)
		fmt.Printf("  insert: %d cycles total (%.1f cycles/flow, %.1f lines/flow)\n",
			insertCycles, avg(insertCycles, flowOps), avg(lines, flowOps))
		fmt.Printf("  delete: %d cycles total\n", deleteCycles)
		fmt.Printf("  data plane classified %d packets during the churn, lock-free\n", classified.Load())
		fmt.Printf("  final table: %d rules, %.1f KiB hardware memory\n\n",
			cls.Len(), float64(cls.Memory().TotalBytes())/1024)
	}
	fmt.Println("BST updates stay near the rule-filter floor (2 cycles/line);")
	fmt.Println("MBT pays trie node expansion on every fresh prefix — the Fig. 3 gap.")
}

func exactHost(addr uint32) repro.Prefix {
	return repro.Prefix{Addr: addr, Len: 32}
}

func avg(total, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
