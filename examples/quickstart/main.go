// Quickstart: build an engine with functional options, insert rules,
// classify headers — then swap the backend without touching the caller
// code, the paper's programmability claim in one file.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	rules := []repro.Rule{
		{
			// Highest priority: quarantine a compromised subnet.
			ID: 1, Priority: 1,
			SrcIP:   repro.MustParsePrefix("10.66.0.0/16"),
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto:  repro.AnyProto(),
			Action: repro.ActionDeny,
		},
		{
			ID: 2, Priority: 2,
			SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
			Proto:  repro.ExactProto(repro.ProtoTCP),
			Action: repro.ActionPermit,
		},
		{
			ID: 3, Priority: 3,
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(53),
			Proto:  repro.ExactProto(repro.ProtoUDP),
			Action: repro.ActionPermit,
		},
	}
	rs, err := repro.NewRuleSet(rules)
	if err != nil {
		log.Fatal(err)
	}

	headers := []repro.Header{
		{SrcIP: ip(10, 1, 2, 3), DstIP: ip(192, 168, 0, 1), SrcPort: 44123, DstPort: 80, Proto: repro.ProtoTCP},
		{SrcIP: ip(10, 66, 1, 1), DstIP: ip(192, 168, 0, 1), SrcPort: 44123, DstPort: 80, Proto: repro.ProtoTCP},
		{SrcIP: ip(8, 8, 8, 8), DstIP: ip(10, 0, 0, 53), SrcPort: 5353, DstPort: 53, Proto: repro.ProtoUDP},
		{SrcIP: ip(8, 8, 8, 8), DstIP: ip(10, 0, 0, 53), SrcPort: 5353, DstPort: 22, Proto: repro.ProtoTCP},
	}

	// The same workload through two interchangeable engines: the paper's
	// decomposition architecture (MBT mode) and the Tuple Space Search
	// baseline it is compared against in Table I.
	for _, backend := range []repro.Backend{repro.BackendDecomposition, repro.BackendTSS} {
		eng, err := repro.New(
			repro.WithBackend(backend),
			repro.WithConfig(repro.Config{
				LPM:   repro.LPMMultiBitTrie,
				Range: repro.RangeRegisterBank,
				Exact: repro.ExactDirectIndex,
			}),
			repro.WithRules(rs),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%v backend, %d rules]\n", eng.Backend(), eng.Len())
		for i, res := range eng.LookupBatch(headers) {
			if res.Found {
				fmt.Printf("  %v -> rule %d (%v)\n", headers[i], res.RuleID, res.Action)
			} else {
				fmt.Printf("  %v -> no match: discard\n", headers[i])
			}
		}
		// Only the decomposition backend carries the FPGA hardware model.
		if cls, ok := eng.(*repro.Classifier); ok {
			tp := cls.ModelThroughput()
			fmt.Printf("  modeled throughput: %.2f Mpps (%.2f Gbps at 72 B frames)\n", tp.Mpps, tp.Gbps)
		}
	}
}

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
