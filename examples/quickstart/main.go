// Quickstart: build a small classifier, insert rules, classify headers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// Select the algorithm set — the decision the paper's Decision
	// Control Domain makes per application. MBT mode is the
	// high-throughput configuration.
	cls, err := repro.NewClassifier(repro.Config{
		LPM:   repro.LPMMultiBitTrie,
		Range: repro.RangeRegisterBank,
		Exact: repro.ExactDirectIndex,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}

	rules := []repro.Rule{
		{
			// Highest priority: quarantine a compromised subnet.
			ID: 1, Priority: 1,
			SrcIP:   repro.MustParsePrefix("10.66.0.0/16"),
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto:  repro.AnyProto(),
			Action: repro.ActionDeny,
		},
		{
			ID: 2, Priority: 2,
			SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
			Proto:  repro.ExactProto(repro.ProtoTCP),
			Action: repro.ActionPermit,
		},
		{
			ID: 3, Priority: 3,
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(53),
			Proto:  repro.ExactProto(repro.ProtoUDP),
			Action: repro.ActionPermit,
		},
	}
	for _, r := range rules {
		cost, err := cls.Insert(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("installed rule %d: %d hardware cycles, %d lines written\n",
			r.ID, cost.Cycles, cost.Writes)
	}

	headers := []repro.Header{
		{SrcIP: ip(10, 1, 2, 3), DstIP: ip(192, 168, 0, 1), SrcPort: 44123, DstPort: 80, Proto: repro.ProtoTCP},
		{SrcIP: ip(10, 66, 1, 1), DstIP: ip(192, 168, 0, 1), SrcPort: 44123, DstPort: 80, Proto: repro.ProtoTCP},
		{SrcIP: ip(8, 8, 8, 8), DstIP: ip(10, 0, 0, 53), SrcPort: 5353, DstPort: 53, Proto: repro.ProtoUDP},
		{SrcIP: ip(8, 8, 8, 8), DstIP: ip(10, 0, 0, 53), SrcPort: 5353, DstPort: 22, Proto: repro.ProtoTCP},
	}
	for _, h := range headers {
		res, cost := cls.Lookup(h)
		if res.Found {
			fmt.Printf("%v -> rule %d (%v) in %d cycles, %d filter probes\n",
				h, res.RuleID, res.Action, cost.Cycles, res.Probes)
		} else {
			fmt.Printf("%v -> no match: discard\n", h)
		}
	}

	tp := cls.ModelThroughput()
	fmt.Printf("modeled throughput: %.2f Mpps (%.2f Gbps at 72 B frames)\n", tp.Mpps, tp.Gbps)
}

func ip(a, b, c, d byte) uint32 {
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
}
