// IPv6 migration: the paper motivates the programmable architecture with
// the need to adapt to IPv6, whose header fields differ in number and
// length. The engines are generic over the address width, so the same
// classifier runs 128-bit rules unchanged — this example builds an IPv6
// ACL and classifies IPv6 flows.
//
//	go run ./examples/ipv6
package main

import (
	"fmt"
	"log"
	"math/rand"

	repro "repro"
)

func main() {
	cls, err := repro.New6(repro.WithConfig(repro.Config{
		LPM:   repro.LPMMultiBitTrie,
		Range: repro.RangeRegisterBank,
		Exact: repro.ExactDirectIndex,
	}))
	if err != nil {
		log.Fatal(err)
	}

	// A small IPv6 data-centre ACL: per-tenant /48s under a site /32.
	site := repro.Addr6{Hi: 0x2001_0db8_0000_0000}
	rules := []repro.Rule6{
		{
			ID: 1, Priority: 1,
			SrcIP:   prefix6(tenant(site, 0x0001), 48),
			DstIP:   prefix6(tenant(site, 0x0002), 48),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(443),
			Proto:  repro.ExactProto(repro.ProtoTCP),
			Action: repro.ActionPermit,
		},
		{
			ID: 2, Priority: 2,
			SrcIP:   prefix6(site, 32), // whole site
			DstIP:   prefix6(tenant(site, 0x0002), 48),
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto:  repro.AnyProto(),
			Action: repro.ActionDeny, // default-deny into tenant 2
		},
		{
			ID: 3, Priority: 3,
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(53),
			Proto:  repro.ExactProto(repro.ProtoUDP),
			Action: repro.ActionPermit,
		},
	}
	var build repro.Cost
	for _, r := range rules {
		cost, err := cls.Insert(r)
		if err != nil {
			log.Fatal(err)
		}
		build = build.Add(cost)
	}
	fmt.Printf("installed %d IPv6 rules: %d cycles, %d lines (128-bit tries are deeper)\n",
		len(rules), build.Cycles, build.Writes)

	rnd := rand.New(rand.NewSource(1))
	flows := []repro.Header6{
		{
			SrcIP:   hostIn(tenant(site, 0x0001), rnd),
			DstIP:   hostIn(tenant(site, 0x0002), rnd),
			SrcPort: 50000, DstPort: 443, Proto: repro.ProtoTCP,
		},
		{
			SrcIP:   hostIn(tenant(site, 0x0003), rnd),
			DstIP:   hostIn(tenant(site, 0x0002), rnd),
			SrcPort: 50000, DstPort: 22, Proto: repro.ProtoTCP,
		},
		{
			SrcIP:   repro.Addr6{Hi: 0x2a00_1450_4009_0000, Lo: 0x0815},
			DstIP:   hostIn(tenant(site, 0x0001), rnd),
			SrcPort: 5353, DstPort: 53, Proto: repro.ProtoUDP,
		},
		{
			SrcIP:   repro.Addr6{Hi: 0x2a00_1450_4009_0000, Lo: 0x0815},
			DstIP:   hostIn(tenant(site, 0x0001), rnd),
			SrcPort: 5353, DstPort: 25, Proto: repro.ProtoTCP,
		},
	}
	for _, h := range flows {
		res, cost := cls.Lookup(h)
		if res.Found {
			fmt.Printf("%032x:%d -> rule %d (%v) in %d cycles\n",
				h.SrcIP.Hi, h.DstPort, res.RuleID, res.Action, cost.Cycles)
		} else {
			fmt.Printf("%032x:%d -> no match: discard\n", h.SrcIP.Hi, h.DstPort)
		}
	}

	tp := cls.ModelThroughput()
	fmt.Printf("IPv6 pipeline: %.2f cycles/packet -> %.2f Mpps (deeper trie, same architecture)\n",
		tp.CyclesPerPacket, tp.Mpps)
}

// tenant returns the /48 base of a tenant under the site /32.
func tenant(site repro.Addr6, id uint16) repro.Addr6 {
	return repro.Addr6{Hi: site.Hi | uint64(id)<<16, Lo: 0}
}

func prefix6(a repro.Addr6, l uint8) repro.Prefix6 {
	return repro.Prefix6{Addr: a, Len: l}.Canonical()
}

// hostIn picks a random host address inside a /48.
func hostIn(base repro.Addr6, rnd *rand.Rand) repro.Addr6 {
	return repro.Addr6{Hi: base.Hi | uint64(rnd.Intn(1<<16)), Lo: rnd.Uint64()}
}
