package repro_test

import (
	"fmt"

	repro "repro"
)

// Example demonstrates the basic build-insert-lookup flow with the MBT
// (high-throughput) configuration.
func Example() {
	cls, err := repro.NewClassifier(repro.Config{LPM: repro.LPMMultiBitTrie}, nil)
	if err != nil {
		panic(err)
	}
	if _, err := cls.Insert(repro.Rule{
		ID: 1, Priority: 1,
		SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
		SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
		Proto:  repro.ExactProto(repro.ProtoTCP),
		Action: repro.ActionPermit,
	}); err != nil {
		panic(err)
	}
	res, _ := cls.Lookup(repro.Header{SrcIP: 0x0a000001, DstPort: 80, Proto: repro.ProtoTCP})
	fmt.Println(res.Found, res.RuleID, res.Action)
	// Output: true 1 permit
}

// ExampleClassifier_Delete shows incremental rule removal: deleting the
// specific rule uncovers the broader one.
func ExampleClassifier_Delete() {
	cls, _ := repro.NewClassifier(repro.Config{}, nil)
	cls.Insert(repro.Rule{
		ID: 1, Priority: 1,
		SrcIP:   repro.MustParsePrefix("10.1.0.0/16"),
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto:  repro.AnyProto(),
		Action: repro.ActionDeny,
	})
	cls.Insert(repro.Rule{
		ID: 2, Priority: 2,
		SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto:  repro.AnyProto(),
		Action: repro.ActionPermit,
	})
	h := repro.Header{SrcIP: 0x0a010101, Proto: repro.ProtoTCP}
	before, _ := cls.Lookup(h)
	cls.Delete(1)
	after, _ := cls.Lookup(h)
	fmt.Println(before.Action, after.Action)
	// Output: deny permit
}

// ExampleGenerateRules produces a deterministic ClassBench-style workload
// and verifies it against the linear oracle.
func ExampleGenerateRules() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 1})
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 10, HitRatio: 1, Seed: 2})
	cls, _ := repro.NewClassifier(repro.Config{}, rs)
	agree := 0
	for _, h := range trace {
		got, _ := cls.Lookup(h)
		want, ok := rs.Match(h)
		if got.Found == ok && (!ok || got.RuleID == want.ID) {
			agree++
		}
	}
	fmt.Println(agree, "of", len(trace))
	// Output: 10 of 10
}

// ExampleClassifier_ModelThroughput reproduces the paper's Section IV.D
// arithmetic: cycles per packet at 200 MHz converted to Mpps and Gbps at
// 72-byte minimum Ethernet frames.
func ExampleClassifier_ModelThroughput() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 1000, Seed: 1})
	cls, _ := repro.NewClassifier(repro.Config{LPM: repro.LPMMultiBitTrie}, rs)
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 2000, HitRatio: 0.9, Seed: 3})
	for _, h := range trace {
		cls.Lookup(h)
	}
	tp := cls.ModelThroughput()
	fmt.Printf("%.0f cycles/pkt -> %.0f Mpps\n", tp.CyclesPerPacket, tp.Mpps)
	// Output: 2 cycles/pkt -> 100 Mpps
}
