package repro_test

import (
	"fmt"

	repro "repro"
)

// ExampleNew demonstrates the options-based construction and the basic
// insert-lookup flow on the default (decomposition) backend.
func ExampleNew() {
	eng, err := repro.New(
		repro.WithConfig(repro.Config{LPM: repro.LPMMultiBitTrie}),
	)
	if err != nil {
		panic(err)
	}
	if _, err := eng.Insert(repro.Rule{
		ID: 1, Priority: 1,
		SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
		SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
		Proto:  repro.ExactProto(repro.ProtoTCP),
		Action: repro.ActionPermit,
	}); err != nil {
		panic(err)
	}
	res, _ := eng.Lookup(repro.Header{SrcIP: 0x0a000001, DstPort: 80, Proto: repro.ProtoTCP})
	fmt.Println(res.Found, res.RuleID, res.Action)
	// Output: true 1 permit
}

// ExampleNew_backend swaps the lookup algorithm — the paper's
// programmability claim — without changing any caller code: the same
// ruleset and trace run on the decomposition architecture and on Tuple
// Space Search, and must agree.
func ExampleNew_backend() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 1})
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 50, HitRatio: 0.9, Seed: 2})
	for _, backend := range []repro.Backend{repro.BackendDecomposition, repro.BackendTSS} {
		eng, err := repro.New(
			repro.WithBackend(backend),
			repro.WithRules(rs),
		)
		if err != nil {
			panic(err)
		}
		agree := 0
		for i, res := range eng.LookupBatch(trace) {
			want, ok := rs.Match(trace[i])
			if res.Found == ok && (!ok || res.RuleID == want.ID) {
				agree++
			}
		}
		fmt.Printf("%v: %d of %d agree with the oracle\n", eng.Backend(), agree, len(trace))
	}
	// Output:
	// Decomposition: 50 of 50 agree with the oracle
	// TSS: 50 of 50 agree with the oracle
}

// ExampleNew_sharded partitions one ruleset across four replicas of the
// TSS backend: updates hash to one replica, while LookupBatch fans out
// across all replicas in parallel and merges by priority — with unique
// rule priorities (as here) the answers stay identical to the unsharded
// engine.
func ExampleNew_sharded() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.FW, Size: 200, Seed: 3})
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 60, HitRatio: 0.9, Seed: 4})
	eng, err := repro.New(
		repro.WithBackend(repro.BackendTSS),
		repro.WithRules(rs),
		repro.WithShards(4),
	)
	if err != nil {
		panic(err)
	}
	agree := 0
	for i, res := range eng.LookupBatch(trace) {
		want, ok := rs.Match(trace[i])
		if res.Found == ok && (!ok || res.RuleID == want.ID) {
			agree++
		}
	}
	fmt.Printf("%d rules over 4 shards: %d of %d agree with the oracle\n", eng.Len(), agree, len(trace))
	// Output: 200 rules over 4 shards: 60 of 60 agree with the oracle
}

// ExampleNew_flowCache fronts an engine with the exact-match flow cache:
// repeated flows are served from one lock-free hash probe, and a rule
// update invalidates every cached verdict atomically.
func ExampleNew_flowCache() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 200, Seed: 3})
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 40, HitRatio: 0.9, Seed: 4})
	eng, err := repro.New(
		repro.WithRules(rs),
		repro.WithFlowCache(1024),
	)
	if err != nil {
		panic(err)
	}
	for pass := 0; pass < 3; pass++ {
		for _, h := range trace {
			eng.Lookup(h)
		}
	}
	cs := eng.(interface{ CacheStats() repro.FlowCacheStats }).CacheStats()
	fmt.Printf("3 passes over %d flows: %d hits, %d misses\n", len(trace), cs.Hits, cs.Misses)
	// Output: 3 passes over 40 flows: 80 hits, 40 misses
}

// ExampleEngine_Delete shows incremental rule removal through the Engine
// interface: deleting the specific rule uncovers the broader one.
func ExampleEngine_Delete() {
	eng, _ := repro.New()
	eng.Insert(repro.Rule{
		ID: 1, Priority: 1,
		SrcIP:   repro.MustParsePrefix("10.1.0.0/16"),
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto:  repro.AnyProto(),
		Action: repro.ActionDeny,
	})
	eng.Insert(repro.Rule{
		ID: 2, Priority: 2,
		SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto:  repro.AnyProto(),
		Action: repro.ActionPermit,
	})
	h := repro.Header{SrcIP: 0x0a010101, Proto: repro.ProtoTCP}
	before, _ := eng.Lookup(h)
	eng.Delete(1)
	after, _ := eng.Lookup(h)
	fmt.Println(before.Action, after.Action)
	// Output: deny permit
}

// ExampleGenerateRules produces a deterministic ClassBench-style workload
// and verifies it against the linear oracle.
func ExampleGenerateRules() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 1})
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 10, HitRatio: 1, Seed: 2})
	eng, _ := repro.New(repro.WithRules(rs))
	agree := 0
	for _, h := range trace {
		got, _ := eng.Lookup(h)
		want, ok := rs.Match(h)
		if got.Found == ok && (!ok || got.RuleID == want.ID) {
			agree++
		}
	}
	fmt.Println(agree, "of", len(trace))
	// Output: 10 of 10
}

// ExampleClassifier_ModelThroughput reproduces the paper's Section IV.D
// arithmetic: cycles per packet at 200 MHz converted to Mpps and Gbps at
// 72-byte minimum Ethernet frames. The hardware model belongs to the
// decomposition backend's concrete type.
func ExampleClassifier_ModelThroughput() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 1000, Seed: 1})
	eng, _ := repro.New(
		repro.WithConfig(repro.Config{LPM: repro.LPMMultiBitTrie}),
		repro.WithRules(rs),
	)
	cls := eng.(*repro.Classifier) // BackendDecomposition returns *Classifier
	trace, _ := repro.GenerateTrace(rs, repro.TraceConfig{Size: 2000, HitRatio: 0.9, Seed: 3})
	cls.LookupBatch(trace)
	tp := cls.ModelThroughput()
	fmt.Printf("%.0f cycles/pkt -> %.0f Mpps\n", tp.CyclesPerPacket, tp.Mpps)
	// Output: 2 cycles/pkt -> 100 Mpps
}
