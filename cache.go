package repro

import (
	"fmt"
	"sync"

	"repro/internal/flowcache"
	"repro/internal/hwsim"
	"repro/internal/rule"
)

// FlowCacheStats reports flow-cache effectiveness: slot capacity, hit
// and miss counts, evictions of live entries, and the number of
// generation invalidations (one per completed rule update).
type FlowCacheStats = flowcache.Stats

// WithFlowCache puts a sharded, lock-free exact-match header cache with
// the given number of entry slots (rounded up to a power of two) in
// front of the engine. Skewed traffic — the Zipf-like flow popularity of
// real networks — turns most lookups into one hash probe; rule updates
// invalidate the whole cache by bumping its generation, so a lookup
// issued after an Insert or Delete returns never sees a pre-update
// verdict. The option composes with every backend and with WithShards
// (the cache fronts the sharded fan-out, so a cache hit skips every
// replica).
//
// Engines built with this option additionally implement
//
//	interface{ CacheStats() FlowCacheStats }
//
// for observing hit rates, and ctl STATS reports the same counters.
func WithFlowCache(entries int) Option {
	return func(o *engineOptions) { o.flowCache = entries }
}

// newFlowCached wraps an assembled engine in the flow cache. When the
// inner engine models hardware throughput (decomposition, sharded or
// not), the wrapper keeps that capability visible, mirroring how the
// shard layer splits sharded/shardedDecomposition.
func newFlowCached(inner Engine, entries int) Engine {
	c := cachedEngine{inner: inner, cache: flowcache.New(entries)}
	if _, ok := inner.(interface{ ModelThroughput() Throughput }); ok {
		return &cachedModelEngine{cachedEngine: c}
	}
	return &c
}

// cachedModelEngine additionally surfaces the hardware throughput model
// of a decomposition inner engine.
type cachedModelEngine struct {
	cachedEngine
}

// ModelThroughput reports the inner engine's modeled forwarding rate
// (the cache does not change the modeled hardware pipeline).
func (c *cachedModelEngine) ModelThroughput() Throughput {
	return c.inner.(interface{ ModelThroughput() Throughput }).ModelThroughput()
}

// cachedEngine fronts any Engine with a flowcache.Cache. Lookups probe
// the cache first and fill it on miss; updates delegate to the inner
// engine and then invalidate, so the cache can never outlive the
// ruleset state it was filled from.
type cachedEngine struct {
	inner Engine
	cache *flowcache.Cache
}

// Backend reports the wrapped engine's algorithm.
func (c *cachedEngine) Backend() Backend { return c.inner.Backend() }

// Unwrap exposes the wrapped engine so capability probes (modeled
// throughput, shard count) can reach through the cache layer.
func (c *cachedEngine) Unwrap() Engine { return c.inner }

// Insert installs the rule and invalidates the cache once the update —
// including the RCU snapshot swap — has completed.
func (c *cachedEngine) Insert(r Rule) (Cost, error) {
	cost, err := c.inner.Insert(r)
	if err == nil {
		c.cache.Invalidate()
	}
	return cost, err
}

// Delete removes the rule and invalidates the cache.
func (c *cachedEngine) Delete(id int) (Cost, error) {
	cost, err := c.inner.Delete(id)
	if err == nil {
		c.cache.Invalidate()
	}
	return cost, err
}

// Replace atomically swaps the inner engine's whole ruleset and then
// invalidates the cache with a single generation bump — one
// invalidation for the entire swap, not one per rule, so the cache
// refills immediately against the new ruleset instead of churning
// through N generations.
func (c *cachedEngine) Replace(rules []Rule) (Cost, error) {
	cost, err := c.inner.Replace(rules)
	if err == nil {
		c.cache.Invalidate()
	}
	return cost, err
}

// Snapshot exports the inner engine's installed ruleset.
func (c *cachedEngine) Snapshot() []Rule { return c.inner.Snapshot() }

// Len returns the number of installed rules.
func (c *cachedEngine) Len() int { return c.inner.Len() }

// flowCacheHitCost is the modeled cost of serving a lookup from the
// cache: a single exact-match hash probe.
var flowCacheHitCost = hwsim.Cost{Cycles: 1, Reads: 1}

// Lookup serves the header from the cache when possible, otherwise runs
// the full engine lookup and publishes the verdict.
//
//repro:noalloc
func (c *cachedEngine) Lookup(h Header) (Result, Cost) {
	res, gen, ok := c.cache.Get(h)
	if ok {
		return res, flowCacheHitCost
	}
	res, cost := c.inner.Lookup(h)
	c.cache.Put(gen, h, res)
	return res, cost
}

// LookupBatch serves cache hits in place and classifies only the missed
// headers through the inner engine's batched path, preserving result
// order.
func (c *cachedEngine) LookupBatch(hs []Header) []Result {
	out := make([]Result, len(hs))
	c.LookupBatchInto(hs, out)
	return out
}

// cacheBatchScratch is the pooled miss-compaction working set of the
// flow-cached batch paths: the miss headers are compacted into one
// contiguous slab (so the inner engine sees a dense burst for its
// stage-fused kernel), classified into a pooled result slab, and
// scattered back to their original positions. missKey carries the
// once-computed 5-tuple hashes on the raw-bytes path.
type cacheBatchScratch struct {
	missIdx []int
	miss    []rule.Header
	missKey []uint64
	res     []Result
}

var cacheBatchPool = sync.Pool{New: func() any { return new(cacheBatchScratch) }}

// LookupBatchInto implements Engine: all N cache slots are probed
// first, the misses are compacted into pooled scratch, one batched
// inner lookup classifies them (the fused burst on the decomposition
// backend), and the verdicts scatter back — zero allocations per call
// in steady state.
//
//repro:noalloc
func (c *cachedEngine) LookupBatchInto(hs []Header, out []Result) {
	sc := cacheBatchPool.Get().(*cacheBatchScratch)
	missIdx := sc.missIdx[:0]
	miss := sc.miss[:0]
	var fillGen uint64
	for i, h := range hs {
		res, gen, ok := c.cache.Get(h)
		if ok {
			out[i] = res
			continue
		}
		if len(miss) == 0 {
			// The first generation observed lower-bounds every later
			// one and precedes the engine read below, so stamping all
			// fills with it is safe.
			fillGen = gen
		}
		missIdx = append(missIdx, i)
		miss = append(miss, h)
	}
	if len(miss) > 0 {
		res := sc.res[:0]
		for range miss {
			res = append(res, Result{})
		}
		sc.res = res
		c.inner.LookupBatchInto(miss, res)
		for j, r := range res {
			out[missIdx[j]] = r
			c.cache.Put(fillGen, miss[j], r)
		}
	}
	sc.missIdx, sc.miss = missIdx, miss
	cacheBatchPool.Put(sc)
}

// Memory reports the inner engine's RAM blocks plus the cache slot
// array (a 64-bit slot pointer and a 13-byte header, 30-byte verdict
// and 8-byte generation per entry).
func (c *cachedEngine) Memory() MemoryMap {
	mm := c.inner.Memory()
	mm.Add("flowcache", 64+8*(13+30+8), c.cache.Entries())
	return mm
}

// IncrementalUpdate reports the wrapped engine's Table I property.
func (c *cachedEngine) IncrementalUpdate() bool { return c.inner.IncrementalUpdate() }

// Stats forwards the inner engine's pipeline statistics (population only
// for backends without the hardware model).
func (c *cachedEngine) Stats() Stats {
	if se, ok := c.inner.(interface{ Stats() Stats }); ok {
		return se.Stats()
	}
	return Stats{Rules: c.inner.Len()}
}

// CacheStats reports flow-cache effectiveness.
func (c *cachedEngine) CacheStats() FlowCacheStats { return c.cache.Stats() }

// Shards reports the inner engine's replica count (1 when unsharded),
// so the serving layer sees through the cache without unwrapping.
func (c *cachedEngine) Shards() int {
	if sh, ok := c.inner.(interface{ Shards() int }); ok {
		return sh.Shards()
	}
	return 1
}

// validateFlowCache checks the WithFlowCache argument at New time.
func validateFlowCache(entries int) error {
	if entries < 0 {
		return fmt.Errorf("repro: flow cache size %d, want >= 0", entries)
	}
	return nil
}
