package repro_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	repro "repro"
)

// replaceVariants enumerates the engine compositions every backend's
// Replace contract is verified under: unwrapped, sharded, flow-cached,
// and both wrappers together.
func replaceVariants(b repro.Backend) map[string][]repro.Option {
	return map[string][]repro.Option{
		"plain":         {repro.WithBackend(b)},
		"shards4":       {repro.WithBackend(b), repro.WithShards(4)},
		"cache":         {repro.WithBackend(b), repro.WithFlowCache(1 << 12)},
		"shards4+cache": {repro.WithBackend(b), repro.WithShards(4), repro.WithFlowCache(1 << 12)},
	}
}

// generation is a ruleset whose verdicts are recognizable: every rule ID
// lives in [idBase, idBase+len), and every probe header matches at least
// the catch-all, so a lookup's RuleID always names the generation that
// served it.
type generation struct {
	rules  []repro.Rule
	idBase int
	rs     *repro.RuleSet
}

// makeGeneration builds one such ruleset: eight /8-specific rules plus a
// full-wildcard catch-all.
func makeGeneration(t *testing.T, idBase int, action repro.Action) generation {
	t.Helper()
	var rules []repro.Rule
	for k := 1; k <= 8; k++ {
		rules = append(rules, repro.Rule{
			ID: idBase + k, Priority: 10 + k,
			SrcIP:   repro.Prefix{Addr: uint32(k) << 24, Len: 8},
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto: repro.AnyProto(), Action: repro.ActionQueue,
		})
	}
	rules = append(rules, repro.Rule{
		ID: idBase + 500, Priority: 1000,
		SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
		Proto: repro.AnyProto(), Action: action,
	})
	rs, err := repro.NewRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	return generation{rules: rules, idBase: idBase, rs: rs}
}

// owns reports whether a result's rule ID belongs to this generation.
func (g generation) owns(id int) bool { return id >= g.idBase && id < g.idBase+1000 }

// churnProbes is the header set the churn readers replay: half hit the
// /8-specific rules, half fall through to the catch-all.
func churnProbes() []repro.Header {
	var hs []repro.Header
	for k := 1; k <= 8; k++ {
		hs = append(hs, repro.Header{SrcIP: uint32(k)<<24 | 9, DstIP: 7, SrcPort: 80, DstPort: 443, Proto: repro.ProtoTCP})
	}
	for k := 100; k < 108; k++ {
		hs = append(hs, repro.Header{SrcIP: uint32(k) << 24, DstIP: 3, SrcPort: 1, DstPort: 2, Proto: repro.ProtoUDP})
	}
	return hs
}

// TestReplaceConformanceDifferential swaps whole rulesets on every
// backend/wrapper combination and differential-checks the result
// against the linear oracle after each swap, including the reset and
// failed-swap edge cases.
func TestReplaceConformanceDifferential(t *testing.T) {
	corpus := conformanceCorpus(t)
	a, bset := corpus["acl"], corpus["fw"]
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for variant, opts := range replaceVariants(b) {
				eng, err := repro.New(append(opts, repro.WithRules(a))...)
				if err != nil {
					t.Fatalf("%s: New: %v", variant, err)
				}
				// Swap to an unrelated ruleset: population, snapshot and
				// lookups must all follow it.
				cost, err := eng.Replace(bset.Rules())
				if err != nil {
					t.Fatalf("%s: Replace: %v", variant, err)
				}
				if cost.Cycles <= 0 {
					t.Errorf("%s: replace cost = %+v", variant, cost)
				}
				if eng.Len() != bset.Len() {
					t.Fatalf("%s: Len = %d after replace, want %d", variant, eng.Len(), bset.Len())
				}
				checkAgainstOracle(t, eng, bset, corpusTrace(t, bset, 150, 211))
				snap := eng.Snapshot()
				if len(snap) != bset.Len() {
					t.Fatalf("%s: Snapshot has %d rules, want %d", variant, len(snap), bset.Len())
				}
				for i := 1; i < len(snap); i++ {
					if snap[i-1].ID >= snap[i].ID {
						t.Fatalf("%s: Snapshot not ID-sorted at %d", variant, i)
					}
				}
				// A rejected replacement must leave the published ruleset
				// untouched.
				dup := []repro.Rule{bset.Rules()[0], bset.Rules()[0]}
				if _, err := eng.Replace(dup); err == nil {
					t.Fatalf("%s: duplicate-ID replace should fail", variant)
				}
				bad := bset.Rules()[0]
				bad.Priority = 0
				if _, err := eng.Replace([]repro.Rule{bad}); err == nil {
					t.Fatalf("%s: zero-priority replace should fail", variant)
				}
				if eng.Len() != bset.Len() {
					t.Fatalf("%s: failed replace changed Len to %d", variant, eng.Len())
				}
				checkAgainstOracle(t, eng, bset, corpusTrace(t, bset, 60, 212))
				// Replace(nil) is the atomic reset.
				if _, err := eng.Replace(nil); err != nil {
					t.Fatalf("%s: reset: %v", variant, err)
				}
				if eng.Len() != 0 || len(eng.Snapshot()) != 0 {
					t.Fatalf("%s: reset left %d rules", variant, eng.Len())
				}
				if res, _ := eng.Lookup(repro.Header{SrcIP: 1}); res.Found {
					t.Fatalf("%s: lookup found %d in a reset engine", variant, res.RuleID)
				}
				// And the engine is fully usable after a reset.
				if _, err := eng.Replace(a.Rules()); err != nil {
					t.Fatalf("%s: replace after reset: %v", variant, err)
				}
				checkAgainstOracle(t, eng, a, corpusTrace(t, a, 60, 213))
			}
		})
	}
}

// TestReplaceAtomicUnderChurn is the swap-atomicity contract, run with
// -race in CI: while a writer flips the whole ruleset between two
// recognizable generations, concurrent readers must only ever observe
// verdicts belonging to exactly one generation — never a miss, never a
// mixed batch (flow-cached engines excepted for mixing, see below), and
// never a stale verdict after a swap has returned.
func TestReplaceAtomicUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test")
	}
	genA := makeGeneration(t, 0, repro.ActionPermit)
	genB := makeGeneration(t, 1000, repro.ActionDeny)
	probes := churnProbes()

	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			t.Parallel()
			for variant, opts := range replaceVariants(b) {
				variant, opts := variant, opts
				t.Run(variant, func(t *testing.T) {
					runReplaceChurn(t, opts, genA, genB, probes)
				})
			}
		})
	}
}

func runReplaceChurn(t *testing.T, opts []repro.Option, genA, genB generation, probes []repro.Header) {
	t.Helper()
	eng, err := repro.New(append(opts, repro.WithRules(genA.rs))...)
	if err != nil {
		t.Fatal(err)
	}
	_, cached := eng.(interface{ CacheStats() repro.FlowCacheStats })

	// classify maps a result to its generation; "" means the result
	// belongs to neither (an atomicity violation).
	classify := func(res repro.Result) string {
		switch {
		case res.Found && genA.owns(res.RuleID):
			return "A"
		case res.Found && genB.owns(res.RuleID):
			return "B"
		default:
			return ""
		}
	}

	var stop atomic.Bool
	errc := make(chan error, 8)
	report := func(format, who string, args ...any) {
		select {
		case errc <- fmt.Errorf("%s: "+format, append([]any{who}, args...)...):
		default:
		}
		stop.Store(true)
	}

	var wg sync.WaitGroup
	// Single-lookup readers: every result must belong to a generation.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := fmt.Sprintf("reader%d", w)
			for i := 0; !stop.Load(); i++ {
				h := probes[i%len(probes)]
				res, _ := eng.Lookup(h)
				if classify(res) == "" {
					report("header %+v produced out-of-generation result %+v", who, h, res)
					return
				}
			}
		}(w)
	}
	// Batch readers: additionally, a batch on an uncached engine must be
	// generation-homogeneous — the whole batch reads one published
	// snapshot (per engine or per replica set), so a mixed batch means a
	// half-applied swap leaked.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			who := fmt.Sprintf("batcher%d", w)
			for !stop.Load() {
				out := eng.LookupBatch(probes)
				seen := ""
				for i, res := range out {
					g := classify(res)
					if g == "" {
						report("batch[%d] (header %+v) produced out-of-generation result %+v", who, i, probes[i], res)
						return
					}
					if cached {
						continue // a racing fill may legally mix generations mid-swap
					}
					if seen == "" {
						seen = g
					} else if g != seen {
						report("batch mixed generations %s and %s at index %d — half-applied swap observed", who, seen, g, i)
						return
					}
				}
			}
		}(w)
	}
	// Writer: flip generations; immediately after each Replace returns,
	// a lookup must see the NEW generation — the flow cache may never
	// serve a pre-swap verdict once the swap completed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		gens := []generation{genB, genA}
		deadline := time.Now().Add(300 * time.Millisecond)
		for i := 0; time.Now().Before(deadline) && !stop.Load(); i++ {
			g := gens[i%2]
			if _, err := eng.Replace(g.rules); err != nil {
				report("replace: %v", "writer", err)
				return
			}
			for _, h := range probes[:4] {
				res, _ := eng.Lookup(h)
				if !res.Found || !g.owns(res.RuleID) {
					report("post-swap lookup of %+v returned stale result %+v", "writer", h, res)
					return
				}
			}
		}
		stop.Store(true)
	}()
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	// Quiesced end state must match the last generation's oracle.
	final := eng.Snapshot()
	if len(final) == 0 {
		t.Fatal("engine empty after churn")
	}
	owner := genA
	if genB.owns(final[0].ID) {
		owner = genB
	}
	checkAgainstOracle(t, eng, owner.rs, probes)
}
