package repro_test

import (
	"fmt"
	"testing"
	"time"

	repro "repro"
	"repro/internal/workload"
)

// replaySchedules builds one mixed schedule per traffic model: lookups,
// incremental updates and whole-ruleset swaps over a generated ACL set.
func replaySchedules(t *testing.T) []*workload.Schedule {
	t.Helper()
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 90, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	var out []*workload.Schedule
	for _, m := range workload.Models() {
		s, err := workload.Generate(rs, workload.Config{
			Model: m, Events: 1200, Duration: time.Second, Seed: 72,
			UpdateRatio: 0.1, Swaps: 2, HeaderPool: 512,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		out = append(out, s)
	}
	return out
}

// replayVerdicts replays a schedule sequentially against one engine
// composition and returns the per-lookup verdict sequence.
func replayVerdicts(t *testing.T, s *workload.Schedule, opts ...repro.Option) []workload.Verdict {
	t.Helper()
	eng, err := repro.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := workload.Replay(s, workload.ReplayConfig{
		Lookups:         []workload.Target{workload.EngineTarget{Eng: eng}},
		Sequential:      true,
		CollectVerdicts: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("replay errors: %d (first: %v)", rep.TotalErrors(), rep.FirstError)
	}
	return rep.Verdicts
}

// TestWorkloadReplayDifferential is the replay-differential property:
// for any generated workload schedule — whatever the traffic model —
// replaying it in order yields the identical per-lookup verdict
// sequence on BackendLinear and BackendDecomposition, plain and
// sharded, with and without a flow cache. The schedule mixes inserts,
// deletes and atomic swaps between the lookups, so the property covers
// every update path's effect on subsequent verdicts, not just
// steady-state agreement.
func TestWorkloadReplayDifferential(t *testing.T) {
	type composition struct {
		name string
		opts []repro.Option
	}
	compositions := []composition{
		{"linear", []repro.Option{repro.WithBackend(repro.BackendLinear)}},
		{"linear-shards4", []repro.Option{repro.WithBackend(repro.BackendLinear), repro.WithShards(4)}},
		{"decomposition", []repro.Option{repro.WithBackend(repro.BackendDecomposition)}},
		{"decomposition-shards4", []repro.Option{repro.WithBackend(repro.BackendDecomposition), repro.WithShards(4)}},
		{"decomposition-cached", []repro.Option{repro.WithBackend(repro.BackendDecomposition), repro.WithFlowCache(1 << 10)}},
	}
	for _, s := range replaySchedules(t) {
		s := s
		t.Run(s.Model.String(), func(t *testing.T) {
			oracle := replayVerdicts(t, s, compositions[0].opts...)
			if len(oracle) == 0 {
				t.Fatal("schedule produced no lookups")
			}
			for _, c := range compositions[1:] {
				got := replayVerdicts(t, s, c.opts...)
				if len(got) != len(oracle) {
					t.Fatalf("%s: %d verdicts, oracle %d", c.name, len(got), len(oracle))
				}
				for i := range oracle {
					if got[i] != oracle[i] {
						t.Fatalf("%s: lookup %d: verdict %+v, oracle %+v",
							c.name, i, got[i], oracle[i])
					}
				}
			}
		})
	}
}

// TestWorkloadReplayConcurrentConsistency replays the shift schedule
// with parallel workers against a sharded, flow-cached engine under the
// race detector: whatever the interleaving, every operation must
// succeed (the control lane applies updates in generated order, so no
// delete can observe a missing rule) and every verdict must name a rule
// that existed at some point in the run.
func TestWorkloadReplayConcurrentConsistency(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.FW, Size: 70, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s, err := workload.Generate(rs, workload.Config{
		Model: workload.ModelShift, Events: 3000, Duration: 60 * time.Millisecond,
		Seed: 78, UpdateRatio: 0.15, Swaps: 3, HeaderPool: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithBackend(repro.BackendLinear),
		repro.WithShards(2), repro.WithFlowCache(1<<9))
	if err != nil {
		t.Fatal(err)
	}
	target := workload.EngineTarget{Eng: eng}
	rep, err := workload.Replay(s, workload.ReplayConfig{
		Lookups: []workload.Target{target, target, target, target},
		Batch:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalErrors() != 0 {
		t.Fatalf("replay errors: %d (first: %v)", rep.TotalErrors(), rep.FirstError)
	}
	issued := 0
	for _, st := range rep.Ops {
		issued += st.Count
	}
	if issued != len(s.Events) {
		t.Fatalf("issued %d of %d events", issued, len(s.Events))
	}
}

// ExampleNew_workloadReplay shows the workload subsystem end to end:
// generate a deterministic schedule and replay it in-process.
func ExampleNew_workloadReplay() {
	rs, _ := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 50, Seed: 1})
	sched, _ := workload.Generate(rs, workload.Config{
		Model: workload.ModelZipf, Events: 1000, Duration: 10 * time.Millisecond, Seed: 1,
	})
	eng, _ := repro.New(repro.WithRules(rs))
	rep, _ := workload.Replay(sched, workload.ReplayConfig{
		Lookups:     []workload.Target{workload.EngineTarget{Eng: eng}},
		SkipInstall: true, // WithRules already loaded the ruleset
	})
	fmt.Println(rep.Ops[workload.OpLookup].Count, "lookups,", rep.TotalErrors(), "errors")
	// Output: 1000 lookups, 0 errors
}
