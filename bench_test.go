package repro

// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md section 4 and EXPERIMENTS.md for the
// paper-vs-measured record):
//
//	BenchmarkTableI      — multi-dimensional algorithm comparison
//	BenchmarkTableII     — single-field engine comparison
//	BenchmarkFig3        — ruleset update time (clock cycles)
//	BenchmarkFig4        — packet lookup time vs PHS size (clock cycles)
//	BenchmarkThroughput  — Section IV.D Mpps / Gbps figures
//	BenchmarkAblation*   — design-choice studies from DESIGN.md section 5
//
// The cmd/lookupbench binary prints the same data as formatted tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/hwsim"
	"repro/internal/label"
	"repro/internal/lpm"
	"repro/internal/packet"
	"repro/internal/rangematch"
	"repro/internal/rule"
	"repro/internal/ruleset"
)

// benchWorkload caches rulesets and traces across benchmarks.
type benchWorkload struct {
	set   *rule.Set
	trace []rule.Header
}

var benchCache = map[string]benchWorkload{}

func workload(b *testing.B, fam ruleset.Family, size, traceN int) benchWorkload {
	b.Helper()
	key := fmt.Sprintf("%v-%d-%d", fam, size, traceN)
	if w, ok := benchCache[key]; ok {
		return w
	}
	s, err := ruleset.Generate(ruleset.Config{Family: fam, Size: size, Seed: 1})
	if err != nil {
		b.Fatalf("Generate: %v", err)
	}
	trace, err := ruleset.GenerateTrace(s, ruleset.TraceConfig{Size: traceN, HitRatio: 0.9, Seed: 2})
	if err != nil {
		b.Fatalf("GenerateTrace: %v", err)
	}
	w := benchWorkload{set: s, trace: trace}
	benchCache[key] = w
	return w
}

// BenchmarkTableI measures every Table I comparator on the standard
// rulesets: ns per lookup (measured), bytes of data structure and
// incremental-update support (reported as metrics).
func BenchmarkTableI(b *testing.B) {
	for _, fam := range ruleset.Families() {
		for _, size := range []int{1000, 10000} {
			w := workload(b, fam, size, 4096)
			for _, cls := range baseline.All() {
				cls := cls
				name := fmt.Sprintf("%s/%s-%s", cls.Name(), fam, ruleset.SizeName(size))
				b.Run(name, func(b *testing.B) {
					if err := cls.Build(w.set); err != nil {
						b.Skipf("build: %v", err)
					}
					b.ReportMetric(float64(cls.MemoryBytes()), "bytes")
					if cls.IncrementalUpdate() {
						b.ReportMetric(1, "incr")
					} else {
						b.ReportMetric(0, "incr")
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						cls.Match(w.trace[i%len(w.trace)])
					}
				})
			}
			// This work: the paper's decomposition classifier in MBT mode.
			b.Run(fmt.Sprintf("ThisWork-MBT/%s-%s", fam, ruleset.SizeName(size)), func(b *testing.B) {
				c, _, err := core.NewV4(core.Config{LPM: core.LPMMultiBitTrie}, w.set)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(c.Memory().TotalBytes()), "bytes")
				b.ReportMetric(1, "incr")
				headers := make([]core.Header[lpm.V4], len(w.trace))
				for i, h := range w.trace {
					headers[i] = core.V4Header(h)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					c.Lookup(headers[i%len(headers)])
				}
			})
		}
	}
}

// BenchmarkTableII measures the single-field engine candidates: modeled
// lookup cycles, modeled memory and measured ns/op, on the prefix and
// range populations of the ACL-10K ruleset.
func BenchmarkTableII(b *testing.B) {
	w := workload(b, ruleset.ACL, 10000, 4096)

	var prefixes []lpm.Prefix[lpm.V4]
	seen := map[lpm.Prefix[lpm.V4]]bool{}
	var lens []uint8
	for _, r := range w.set.Rules() {
		for _, p := range []rule.Prefix{r.SrcIP, r.DstIP} {
			lp := lpm.V4Prefix(p)
			if !seen[lp] {
				seen[lp] = true
				prefixes = append(prefixes, lp)
				lens = append(lens, p.Len)
			}
		}
	}
	keys := make([]lpm.V4, len(w.trace))
	for i, h := range w.trace {
		keys[i] = lpm.V4(h.SrcIP)
	}

	type lpmEngine interface {
		Insert(lpm.Prefix[lpm.V4], label.Label) hwsim.Cost
		Lookup(lpm.V4, []label.Label) ([]label.Label, hwsim.Cost)
		Memory() hwsim.MemoryMap
	}
	lpmEngines := map[string]func() lpmEngine{
		"MultiBitTrie": func() lpmEngine {
			t, err := lpm.NewMultiBitTrie[lpm.V4](8)
			if err != nil {
				b.Fatal(err)
			}
			return t
		},
		"AM-Trie": func() lpmEngine {
			t, err := lpm.NewVariableStrideTrie[lpm.V4](lpm.ChooseStrides(32, lens, 8))
			if err != nil {
				b.Fatal(err)
			}
			return t
		},
		"BinarySearchTree": func() lpmEngine { return lpm.NewBST[lpm.V4]() },
		"LeafPushedTrie":   func() lpmEngine { return lpm.NewLeafPushTrie[lpm.V4]() },
	}
	for name, mk := range lpmEngines {
		name, mk := name, mk
		b.Run("LPM/"+name, func(b *testing.B) {
			eng := mk()
			for i, p := range prefixes {
				eng.Insert(p, label.Label(i))
			}
			var meter hwsim.Meter
			var buf []label.Label
			for _, k := range keys[:512] {
				var c hwsim.Cost
				buf, c = eng.Lookup(k, buf[:0])
				meter.Charge(c)
			}
			b.ReportMetric(meter.CyclesPerOp(), "cycles/lookup")
			b.ReportMetric(float64(eng.Memory().TotalBytes()), "bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = eng.Lookup(keys[i%len(keys)], buf[:0])
			}
		})
	}

	var ranges []rule.PortRange
	seenR := map[rule.PortRange]bool{}
	for _, r := range w.set.Rules() {
		for _, pr := range []rule.PortRange{r.SrcPort, r.DstPort} {
			if !seenR[pr] {
				seenR[pr] = true
				ranges = append(ranges, pr)
			}
		}
	}
	rangeEngines := map[string]func() rangematch.Engine{
		"RegisterBank": func() rangematch.Engine { return rangematch.NewRegisterBank(0) },
		"SegmentTree":  func() rangematch.Engine { return rangematch.NewSegmentTree() },
		"RangeTree":    func() rangematch.Engine { return rangematch.NewRangeTree() },
	}
	for name, mk := range rangeEngines {
		name, mk := name, mk
		b.Run("Range/"+name, func(b *testing.B) {
			eng := mk()
			for i, r := range ranges {
				if _, err := eng.Insert(r, label.Label(i)); err != nil {
					b.Fatalf("insert %v: %v", r, err)
				}
			}
			var meter hwsim.Meter
			var buf []label.Label
			for _, h := range w.trace[:512] {
				var c hwsim.Cost
				buf, c = eng.Lookup(h.DstPort, buf[:0])
				meter.Charge(c)
			}
			b.ReportMetric(meter.CyclesPerOp(), "cycles/lookup")
			b.ReportMetric(float64(eng.Memory().TotalBytes()), "bytes")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf, _ = eng.Lookup(w.trace[i%len(w.trace)].DstPort, buf[:0])
			}
		})
	}
}

// BenchmarkFig3 regenerates the ruleset update time figure: total clock
// cycles to download each standard ruleset in MBT mode, BST mode, and the
// original rule filter alone (two cycles per rule plus the hash pipeline
// cycle).
func BenchmarkFig3(b *testing.B) {
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"MBT", core.Config{LPM: core.LPMMultiBitTrie}},
		{"BST", core.Config{LPM: core.LPMBinarySearchTree}},
	}
	for _, fam := range ruleset.Families() {
		for _, size := range ruleset.StandardSizes {
			w := workload(b, fam, size, 64)
			tuples := core.CompileSet(w.set)
			for _, mode := range modes {
				mode := mode
				b.Run(fmt.Sprintf("%s/%s-%s", mode.name, fam, ruleset.SizeName(size)), func(b *testing.B) {
					var cycles float64
					for i := 0; i < b.N; i++ {
						c, err := core.New[lpm.V4](mode.cfg, core.PrefixLens(w.set))
						if err != nil {
							b.Fatal(err)
						}
						cost, err := c.Build(tuples)
						if err != nil {
							b.Fatal(err)
						}
						cycles = float64(cost.Cycles)
					}
					b.ReportMetric(cycles, "cycles")
					b.ReportMetric(cycles/float64(size), "cycles/rule")
				})
			}
			b.Run(fmt.Sprintf("RuleFilterOnly/%s-%s", fam, ruleset.SizeName(size)), func(b *testing.B) {
				// The original rule filter writes one hashed line per
				// rule: two cycles per rule plus one for the final index
				// calculation (Section IV.B).
				for i := 0; i < b.N; i++ {
					_ = tuples
				}
				b.ReportMetric(float64(2*size+1), "cycles")
				b.ReportMetric(float64(2*size+1)/float64(size), "cycles/rule")
			})
		}
	}
}

// BenchmarkFig4 regenerates the lookup-time figure: modeled clock cycles
// to stream packet header sets of increasing size through the pipeline in
// MBT and BST modes (plus measured ns/op for the software path).
func BenchmarkFig4(b *testing.B) {
	w := workload(b, ruleset.ACL, 10000, 50000)
	modes := []struct {
		name string
		cfg  core.Config
	}{
		{"MBT", core.Config{LPM: core.LPMMultiBitTrie}},
		{"BST", core.Config{LPM: core.LPMBinarySearchTree}},
	}
	for _, mode := range modes {
		mode := mode
		c, _, err := core.NewV4(mode.cfg, w.set)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the stats so the pipeline model reflects this trace.
		headers := make([]core.Header[lpm.V4], len(w.trace))
		for i, h := range w.trace {
			headers[i] = core.V4Header(h)
		}
		for _, h := range headers[:8192] {
			c.Lookup(h)
		}
		for _, phs := range []int{1000, 5000, 10000, 50000} {
			b.Run(fmt.Sprintf("%s/PHS-%s", mode.name, ruleset.SizeName(phs)), func(b *testing.B) {
				b.ReportMetric(c.LookupCycles(phs), "cycles")
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					c.Lookup(headers[i%phs])
				}
			})
		}
	}
}

// BenchmarkThroughput regenerates the Section IV.D numbers: packets per
// second and line rate at 200 MHz with 72-byte minimum frames, per LPM
// mode, on ACL-10K.
func BenchmarkThroughput(b *testing.B) {
	w := workload(b, ruleset.ACL, 10000, 16384)
	for _, mode := range []struct {
		name string
		cfg  core.Config
	}{
		{"MBT", core.Config{LPM: core.LPMMultiBitTrie}},
		{"BST", core.Config{LPM: core.LPMBinarySearchTree}},
		{"AM-Trie", core.Config{LPM: core.LPMAMTrie}},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, _, err := core.NewV4(mode.cfg, w.set)
			if err != nil {
				b.Fatal(err)
			}
			headers := make([]core.Header[lpm.V4], len(w.trace))
			for i, h := range w.trace {
				headers[i] = core.V4Header(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
			b.StopTimer()
			tp := c.Throughput()
			b.ReportMetric(tp.Mpps, "Mpps")
			b.ReportMetric(tp.Gbps, "Gbps")
			b.ReportMetric(tp.CyclesPerPacket, "cycles/pkt")
		})
	}
}

// BenchmarkFlowCacheZipf measures the flow-cache fast path on
// Zipf-skewed traffic: the same skewed trace through a decomposition
// engine bare and behind WithFlowCache. The cached/uncached ns/op ratio
// is the satellite speedup the cache claims on real (skewed) traffic;
// hit rate is reported as a metric.
func BenchmarkFlowCacheZipf(b *testing.B) {
	w := workload(b, ruleset.ACL, 1000, 4096)
	// Resample the trace with Zipf-distributed flow popularity.
	rng := rand.New(rand.NewSource(9))
	z := rand.NewZipf(rng, 1.2, 1, uint64(len(w.trace)-1))
	trace := make([]rule.Header, len(w.trace))
	for i := range trace {
		trace[i] = w.trace[z.Uint64()]
	}
	for _, tc := range []struct {
		name  string
		cache int
	}{
		{"uncached", 0},
		{"cached-64k", 1 << 16},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rs, err := rule.NewSet(w.set.Rules())
			if err != nil {
				b.Fatal(err)
			}
			eng, err := New(WithRules(rs), WithFlowCache(tc.cache))
			if err != nil {
				b.Fatal(err)
			}
			for _, h := range trace[:1024] {
				eng.Lookup(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng.Lookup(trace[i%len(trace)])
			}
			b.StopTimer()
			if cs, ok := eng.(interface{ CacheStats() FlowCacheStats }); ok {
				b.ReportMetric(cs.CacheStats().HitRate(), "hit-rate")
			}
		})
	}
}

// BenchmarkAblationStride sweeps the MBT stride (DESIGN.md ablation 1):
// lookup depth vs expansion memory.
func BenchmarkAblationStride(b *testing.B) {
	w := workload(b, ruleset.ACL, 5000, 8192)
	for _, stride := range []int{2, 4, 8, 16} {
		stride := stride
		b.Run(fmt.Sprintf("stride-%d", stride), func(b *testing.B) {
			c, _, err := core.NewV4(core.Config{LPM: core.LPMMultiBitTrie, MBTStride: stride}, w.set)
			if err != nil {
				b.Fatal(err)
			}
			headers := make([]core.Header[lpm.V4], len(w.trace))
			for i, h := range w.trace {
				headers[i] = core.V4Header(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Memory().TotalBytes()), "bytes")
			b.ReportMetric(c.Throughput().CyclesPerPacket, "cycles/pkt")
		})
	}
}

// BenchmarkAblationULI compares the pruned ULI against exhaustive
// combination (DESIGN.md ablation: Eq. 1 worst-case LCT vs the decision
// controller's optimization).
func BenchmarkAblationULI(b *testing.B) {
	w := workload(b, ruleset.FW, 5000, 8192)
	for _, mode := range []struct {
		name    string
		combine core.CombineMode
	}{
		{"pruned", core.CombinePruned},
		{"exhaustive", core.CombineExhaustive},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, _, err := core.NewV4(core.Config{Combine: mode.combine}, w.set)
			if err != nil {
				b.Fatal(err)
			}
			headers := make([]core.Header[lpm.V4], len(w.trace))
			for i, h := range w.trace {
				headers[i] = core.V4Header(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
			b.StopTimer()
			st := c.Stats()
			if st.ProbeOps > 0 {
				b.ReportMetric(float64(st.Probes)/float64(st.ProbeOps), "probes/lookup")
			}
		})
	}
}

// BenchmarkAblationRangeEngine compares the port engines inside the full
// classifier across the range-heavy FW family (DESIGN.md ablation 4).
func BenchmarkAblationRangeEngine(b *testing.B) {
	w := workload(b, ruleset.FW, 5000, 8192)
	for _, mode := range []struct {
		name string
		alg  core.RangeAlgo
	}{
		{"RegisterBank", core.RangeRegisterBank},
		{"SegmentTree", core.RangeSegmentTree},
		{"RangeTree", core.RangeRangeTree},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			c, _, err := core.NewV4(core.Config{Range: mode.alg}, w.set)
			if err != nil {
				b.Fatal(err)
			}
			headers := make([]core.Header[lpm.V4], len(w.trace))
			for i, h := range w.trace {
				headers[i] = core.V4Header(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
			b.StopTimer()
			b.ReportMetric(float64(c.Memory().TotalBytes()), "bytes")
		})
	}
}

// BenchmarkAblationOptimizer measures the label-rule mapping optimization
// (Section III.D): probes per lookup with and without shadowed-rule
// removal.
func BenchmarkAblationOptimizer(b *testing.B) {
	w := workload(b, ruleset.FW, 5000, 8192)
	opt, removed, err := core.OptimizeSet(w.set)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		set  *rule.Set
	}{
		{"raw", w.set},
		{"optimized", opt},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			c, _, err := core.NewV4(core.Config{}, tc.set)
			if err != nil {
				b.Fatal(err)
			}
			headers := make([]core.Header[lpm.V4], len(w.trace))
			for i, h := range w.trace {
				headers[i] = core.V4Header(h)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Lookup(headers[i%len(headers)])
			}
			b.StopTimer()
			st := c.Stats()
			if st.ProbeOps > 0 {
				b.ReportMetric(float64(st.Probes)/float64(st.ProbeOps), "probes/lookup")
			}
			b.ReportMetric(float64(len(removed)), "rules-removed")
		})
	}
}

// BenchmarkLookupBatch measures the stage-fused vector batch path
// (ACL-10K, decomposition): LookupBatchInto into a caller-owned slab
// across burst sizes straddling the fusion threshold and the chunk
// size, on the bare engine and behind the flow-cache and shard
// compositions. The acceptance bar is ≥1.3x at burst 64+ over the
// header-at-a-time path this kernel replaced, at 0 allocs/op on every
// composition.
func BenchmarkLookupBatch(b *testing.B) {
	w := workload(b, ruleset.ACL, 10000, 4096)
	compositions := []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"cached-64k", []Option{WithFlowCache(1 << 16)}},
		{"shards4", []Option{WithShards(4)}},
	}
	for _, c := range compositions {
		eng, err := New(append([]Option{WithRules(w.set)}, c.opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		for _, burst := range []int{1, 16, 64, 256} {
			b.Run(fmt.Sprintf("%s/burst-%d", c.name, burst), func(b *testing.B) {
				out := make([]Result, burst)
				eng.LookupBatchInto(w.trace[:burst], out) // warm the pools
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i += burst {
					off := i % (len(w.trace) - burst)
					eng.LookupBatchInto(w.trace[off:off+burst], out)
				}
			})
		}
	}
}

// BenchmarkLookupBytes measures the raw-frame ingress path on the
// decomposition backend (ACL-10K): the acceptance bar is 0 allocs/op
// and single-frame ns/op within 1.15x of the pre-parsed Lookup it
// wraps. Parsed is that baseline; Raw decodes the Ethernet+IPv4 frame
// in place per op, RawBatch64 amortizes the scatter over 64-frame
// slabs, and Raw6/Parsed6 are the split-64 IPv6 twins on the embedded
// ruleset.
func BenchmarkLookupBytes(b *testing.B) {
	w := workload(b, ruleset.ACL, 10000, 4096)
	// Only TCP/UDP carry ports on the wire; zero the rest so frames
	// round-trip to the headers the parsed baseline sees.
	hdrs := make([]Header, len(w.trace))
	frames := make([][]byte, len(w.trace))
	for i, h := range w.trace {
		if h.Proto != rule.ProtoTCP && h.Proto != rule.ProtoUDP {
			h.SrcPort, h.DstPort = 0, 0
		}
		hdrs[i] = h
		frames[i] = packet.BuildEthernet(packet.BuildIPv4(h))
	}
	eng, err := New()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Replace(w.set.Rules()); err != nil {
		b.Fatal(err)
	}

	b.Run("Parsed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng.Lookup(hdrs[i%len(hdrs)])
		}
	})
	b.Run("Raw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.LookupBytes(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RawBatch64", func(b *testing.B) {
		const burst = 64
		out := make([]Result, burst)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i += burst {
			off := i % (len(frames) - burst)
			eng.LookupBytesBatch(frames[off:off+burst], out)
		}
	})

	rules6 := ruleset.Embed6Set(w.set)
	hdrs6 := make([]Header6, len(hdrs))
	frames6 := make([][]byte, len(hdrs))
	for i, h := range hdrs {
		hdrs6[i] = ruleset.Embed6Header(h)
		frames6[i] = packet.BuildEthernet6(hdrs6[i])
	}
	eng6, err := New6()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng6.Replace(rules6); err != nil {
		b.Fatal(err)
	}
	b.Run("Parsed6", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng6.Lookup(hdrs6[i%len(hdrs6)])
		}
	})
	b.Run("Raw6", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng6.LookupBytes(frames6[i%len(frames6)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
