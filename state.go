package repro

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/fwstate"
	"repro/internal/hwsim"
	"repro/internal/packet"
	"repro/internal/rule"
)

// FlowStateStats reports conntrack-table effectiveness: entry capacity,
// install / state-hit / miss counts, TTL expiries, evictions of live
// entries, and the number of generation invalidations.
type FlowStateStats = fwstate.Stats

// WithFlowState puts a sharded, lock-free, TTL-expiring flow-state table
// (a connection tracker) with the given number of entry slots (rounded up
// to a power of two) in front of the engine. A lookup whose matched rule
// carries ActionEstablish ("allow-established") installs a flow entry
// under the direction-normalized 5-tuple key, so the reverse direction of
// the same flow — the server's replies — is accepted by state before the
// classifier runs. Entries expire ttl after their last hit (ttl <= 0
// selects fwstate.DefaultTTL); rule updates invalidate established state
// by bumping the table generation, unless WithFlowStatePreserve keeps it
// across updates. The option composes with every backend, WithShards and
// WithFlowCache (state fronts the cache, so an established-flow hit skips
// both the cache probe and the classifier).
//
// Engines built with this option additionally implement
//
//	interface{ StateStats() FlowStateStats }
//
// for observing state-hit rates, and ctl STATS reports the same counters.
func WithFlowState(entries int, ttl time.Duration) Option {
	return func(o *engineOptions) {
		o.state = entries
		o.stateTTL = ttl
	}
}

// WithFlowStatePreserve keeps established flow state across rule updates
// (Insert, Delete and Replace no longer invalidate the state table). Use
// it when connection continuity across a ruleset swap matters more than
// immediately re-evaluating live flows against the new rules; without it
// every update clears state and established flows must re-traverse the
// classifier (and re-establish) once. Only meaningful together with
// WithFlowState.
func WithFlowStatePreserve() Option {
	return func(o *engineOptions) { o.statePreserve = true }
}

// newFlowState wraps an assembled engine in the flow-state layer. Like
// the flow-cache wrapper, a model-capable inner engine (decomposition,
// possibly sharded or cached) keeps its ModelThroughput visible.
func newFlowState(inner Engine, entries int, ttl time.Duration, preserve bool) Engine {
	s := statefulEngine{inner: inner, table: fwstate.New(entries, ttl), preserve: preserve}
	if _, ok := inner.(interface{ ModelThroughput() Throughput }); ok {
		return &statefulModelEngine{statefulEngine: s}
	}
	return &s
}

// statefulModelEngine additionally surfaces the hardware throughput
// model of a model-capable inner engine.
type statefulModelEngine struct {
	statefulEngine
}

// ModelThroughput reports the inner engine's modeled forwarding rate
// (the state table does not change the modeled hardware pipeline).
func (s *statefulModelEngine) ModelThroughput() Throughput {
	return s.inner.(interface{ ModelThroughput() Throughput }).ModelThroughput()
}

// statefulEngine fronts any Engine with an fwstate.Table. Lookups probe
// the state table first; on a miss the inner engine classifies the
// header, and a verdict whose action is ActionEstablish is installed
// under the normalized flow key, covering both directions. Updates
// delegate to the inner engine and then invalidate established state
// (unless preserve is set), so state can never outlive the ruleset it
// was established from.
type statefulEngine struct {
	inner    Engine
	table    *fwstate.Table
	preserve bool
}

// Backend reports the wrapped engine's algorithm.
func (s *statefulEngine) Backend() Backend { return s.inner.Backend() }

// Unwrap exposes the wrapped engine so capability probes (modeled
// throughput, shard count, cache stats) can reach through the state
// layer.
func (s *statefulEngine) Unwrap() Engine { return s.inner }

// Insert installs the rule and invalidates established state once the
// update has completed, unless the engine was built with
// WithFlowStatePreserve.
func (s *statefulEngine) Insert(r Rule) (Cost, error) {
	cost, err := s.inner.Insert(r)
	if err == nil && !s.preserve {
		s.table.Invalidate()
	}
	return cost, err
}

// Delete removes the rule and invalidates established state (unless
// preserving).
func (s *statefulEngine) Delete(id int) (Cost, error) {
	cost, err := s.inner.Delete(id)
	if err == nil && !s.preserve {
		s.table.Invalidate()
	}
	return cost, err
}

// Replace atomically swaps the inner engine's ruleset and then
// invalidates established state with a single generation bump — one
// invalidation for the whole swap — unless the engine was built with
// WithFlowStatePreserve, in which case live connections survive the
// swap.
func (s *statefulEngine) Replace(rules []Rule) (Cost, error) {
	cost, err := s.inner.Replace(rules)
	if err == nil && !s.preserve {
		s.table.Invalidate()
	}
	return cost, err
}

// Snapshot exports the inner engine's installed ruleset.
func (s *statefulEngine) Snapshot() []Rule { return s.inner.Snapshot() }

// Len returns the number of installed rules.
func (s *statefulEngine) Len() int { return s.inner.Len() }

// flowStateHitCost is the modeled cost of accepting a packet by state: a
// single exact-match hash probe, same as a flow-cache hit.
var flowStateHitCost = hwsim.Cost{Cycles: 1, Reads: 1}

// Lookup accepts the header by established state when possible,
// otherwise runs the full lookup below (cache and classifier) and
// installs a flow entry if the verdict asks to establish.
//
//repro:noalloc
func (s *statefulEngine) Lookup(h Header) (Result, Cost) {
	k := fwstate.KeyOf(h)
	hk := s.table.Hash(k)
	res, gen, ok := s.table.GetHashed(hk, k)
	if ok {
		return res, flowStateHitCost
	}
	res, cost := s.inner.Lookup(h)
	if res.Found && res.Action == ActionEstablish {
		s.table.PutHashed(hk, gen, k, res)
	}
	return res, cost
}

// LookupBatch accepts state hits in place and classifies only the missed
// headers through the inner engine's batched path, preserving result
// order.
func (s *statefulEngine) LookupBatch(hs []Header) []Result {
	out := make([]Result, len(hs))
	s.LookupBatchInto(hs, out)
	return out
}

// stateBatchScratch is the pooled miss-compaction working set of the
// stateful batch paths, mirroring cacheBatchScratch: miss headers are
// compacted into one contiguous slab for the inner engine's batched
// (possibly cached, possibly stage-fused) path, and the once-computed
// flow keys and hashes are reused by the establish-time fills.
type stateBatchScratch struct {
	missIdx []int
	miss    []rule.Header
	missKey []fwstate.Key
	missHK  []uint64
	res     []Result
}

var stateBatchPool = sync.Pool{New: func() any { return new(stateBatchScratch) }}

// LookupBatchInto implements Engine: all N state slots are probed first,
// the misses are compacted into pooled scratch, one batched inner lookup
// classifies them, and the verdicts scatter back, installing flow
// entries for the establishing ones — zero allocations per call in
// steady state. Within one batch the entries installed for earlier
// packets are not visible to later packets of the same batch: the whole
// batch is probed against the state table as it stood at batch start,
// mirroring how a hardware burst is classified against one snapshot.
//
//repro:noalloc
func (s *statefulEngine) LookupBatchInto(hs []Header, out []Result) {
	sc := stateBatchPool.Get().(*stateBatchScratch)
	missIdx := sc.missIdx[:0]
	miss := sc.miss[:0]
	missKey := sc.missKey[:0]
	missHK := sc.missHK[:0]
	var fillGen uint64
	for i, h := range hs {
		k := fwstate.KeyOf(h)
		hk := s.table.Hash(k)
		res, gen, ok := s.table.GetHashed(hk, k)
		if ok {
			out[i] = res
			continue
		}
		if len(miss) == 0 {
			// The first generation observed lower-bounds every later one
			// and precedes the engine read below, so stamping all fills
			// with it is safe (see cachedEngine.LookupBatchInto).
			fillGen = gen
		}
		missIdx = append(missIdx, i)
		miss = append(miss, h)
		missKey = append(missKey, k)
		missHK = append(missHK, hk)
	}
	if len(miss) > 0 {
		res := sc.res[:0]
		for range miss {
			res = append(res, Result{})
		}
		sc.res = res
		s.inner.LookupBatchInto(miss, res)
		for j, r := range res {
			out[missIdx[j]] = r
			if r.Found && r.Action == ActionEstablish {
				s.table.PutHashed(missHK[j], fillGen, missKey[j], r)
			}
		}
	}
	sc.missIdx, sc.miss, sc.missKey, sc.missHK = missIdx, miss, missKey, missHK
	stateBatchPool.Put(sc)
}

// LookupBytes implements Engine for stateful compositions: the flow key
// and its hash are computed once off the freshly decoded header and
// threaded through both the state probe and the establish-time fill. The
// steady-state established-flow path performs no allocations.
//
//repro:noalloc
func (s *statefulEngine) LookupBytes(frame []byte) (Result, error) {
	var h rule.Header
	if err := packet.DecodeEthernet(frame, &h); err != nil {
		return Result{}, err
	}
	k := fwstate.KeyOf(h)
	hk := s.table.Hash(k)
	res, gen, ok := s.table.GetHashed(hk, k)
	if ok {
		return res, nil
	}
	res, _ = s.inner.Lookup(h)
	if res.Found && res.Action == ActionEstablish {
		s.table.PutHashed(hk, gen, k, res)
	}
	return res, nil
}

// LookupBytesBatch implements Engine: decoded headers probe the state
// table with once-computed keys; only the misses reach the inner
// engine's batched raw path — compacted into pooled scratch, classified
// by one batched inner lookup, and scattered back — and the establishing
// verdicts install flow entries with the same keys. Zero allocations per
// slab in steady state.
//
//repro:noalloc
func (s *statefulEngine) LookupBytesBatch(frames [][]byte, out []Result) int {
	b := rawBurstPool.Get().(*packet.Burst)
	hdrs, idx := b.DecodeV4(frames)
	for i := range frames {
		out[i] = Result{}
	}
	sc := stateBatchPool.Get().(*stateBatchScratch)
	missIdx := sc.missIdx[:0]
	miss := sc.miss[:0]
	missKey := sc.missKey[:0]
	missHK := sc.missHK[:0]
	var fillGen uint64
	for j, h := range hdrs {
		k := fwstate.KeyOf(h)
		hk := s.table.Hash(k)
		res, gen, ok := s.table.GetHashed(hk, k)
		if ok {
			out[idx[j]] = res
			continue
		}
		if len(miss) == 0 {
			fillGen = gen
		}
		missIdx = append(missIdx, idx[j])
		miss = append(miss, h)
		missKey = append(missKey, k)
		missHK = append(missHK, hk)
	}
	if len(miss) > 0 {
		res := sc.res[:0]
		for range miss {
			res = append(res, Result{})
		}
		sc.res = res
		s.inner.LookupBatchInto(miss, res)
		for j, r := range res {
			out[missIdx[j]] = r
			if r.Found && r.Action == ActionEstablish {
				s.table.PutHashed(missHK[j], fillGen, missKey[j], r)
			}
		}
	}
	sc.missIdx, sc.miss, sc.missKey, sc.missHK = missIdx, miss, missKey, missHK
	stateBatchPool.Put(sc)
	n := len(hdrs)
	rawBurstPool.Put(b)
	return n
}

// Memory reports the inner engine's RAM blocks plus the state slot array
// (a 64-bit slot pointer and a 46-byte key, 30-byte verdict, 8-byte
// generation and 8-byte expiry per entry).
func (s *statefulEngine) Memory() MemoryMap {
	mm := s.inner.Memory()
	mm.Add("fwstate", 64+8*(46+30+8+8), s.table.Entries())
	return mm
}

// IncrementalUpdate reports the wrapped engine's Table I property.
func (s *statefulEngine) IncrementalUpdate() bool { return s.inner.IncrementalUpdate() }

// Stats forwards the inner engine's pipeline statistics (population only
// for backends without the hardware model).
func (s *statefulEngine) Stats() Stats {
	if se, ok := s.inner.(interface{ Stats() Stats }); ok {
		return se.Stats()
	}
	return Stats{Rules: s.inner.Len()}
}

// StateStats reports flow-state-table effectiveness.
//
// The wrapper deliberately does not forward CacheStats: a cached inner
// composition stays reachable through Unwrap, so capability probes that
// walk the wrapper chain see the cache exactly when one exists instead
// of a zero-valued impostor.
func (s *statefulEngine) StateStats() FlowStateStats { return s.table.Stats() }

// Shards reports the inner engine's replica count (1 when unsharded),
// so the serving layer sees through the state table without unwrapping.
func (s *statefulEngine) Shards() int {
	if sh, ok := s.inner.(interface{ Shards() int }); ok {
		return sh.Shards()
	}
	return 1
}

// validateFlowState checks the WithFlowState arguments at New time.
func validateFlowState(entries int) error {
	if entries < 0 {
		return fmt.Errorf("repro: flow state size %d, want >= 0", entries)
	}
	return nil
}
