package repro_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	repro "repro"
)

// This file is the stateful-layer half of the differential conformance
// suite: every backend × engine composition replays the same
// bidirectional lookup schedules as a naive map-based connection
// tracker layered over the linear-scan rule oracle, and the two must
// agree on every verdict. The per-structure contracts of the state
// table itself live in internal/fwstate (see its TEST_PLAN.md).

// verdict is the comparable projection of a lookup result.
type verdict struct {
	found  bool
	id     int
	action repro.Action
}

func verdictOf(res repro.Result) verdict {
	return verdict{found: res.Found, id: res.RuleID, action: res.Action}
}

// oracleKey is the oracle's own direction-normalized flow key —
// deliberately independent of internal/fwstate's encoding, so the two
// implementations only share the contract, not the code.
type oracleKey struct {
	aIP, bIP     uint32
	aPort, bPort uint16
	proto        uint8
}

func oracleKeyOf(h repro.Header) oracleKey {
	a := uint64(h.SrcIP)<<16 | uint64(h.SrcPort)
	b := uint64(h.DstIP)<<16 | uint64(h.DstPort)
	if a <= b {
		return oracleKey{h.SrcIP, h.DstIP, h.SrcPort, h.DstPort, h.Proto}
	}
	return oracleKey{h.DstIP, h.SrcIP, h.DstPort, h.SrcPort, h.Proto}
}

// conntrackOracle is the naive reference: a map of established flows
// over the linear-scan ruleset oracle, with the same establish /
// invalidate-on-update semantics as the fwstate layer.
type conntrackOracle struct {
	rs       *repro.RuleSet
	state    map[oracleKey]verdict
	stateful bool
	preserve bool
}

func newConntrackOracle(rs *repro.RuleSet, stateful, preserve bool) *conntrackOracle {
	return &conntrackOracle{rs: rs, state: map[oracleKey]verdict{}, stateful: stateful, preserve: preserve}
}

func (o *conntrackOracle) lookup(h repro.Header) verdict {
	k := oracleKeyOf(h)
	if o.stateful {
		if v, ok := o.state[k]; ok {
			return v
		}
	}
	var v verdict
	if r, ok := o.rs.Match(h); ok {
		v = verdict{found: true, id: r.ID, action: r.Action}
	}
	if o.stateful && v.found && v.action == repro.ActionEstablish {
		o.state[k] = v
	}
	return v
}

func (o *conntrackOracle) replace(rs *repro.RuleSet) {
	o.rs = rs
	if !o.preserve {
		o.state = map[oracleKey]verdict{}
	}
}

// establishingCorpus builds the stateful ruleset pair for the replay:
// the base set with every third rule establishing (the rest keep their
// generated permit/deny/... actions), and a swap set that drops every
// fourth rule and re-flips which rules establish — so a mid-replay
// Replace genuinely changes both the match results and the set of flows
// that can establish.
func establishingCorpus(t *testing.T) (*repro.RuleSet, *repro.RuleSet) {
	t.Helper()
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	base := rs.Rules()
	for i := range base {
		if i%3 == 0 {
			base[i].Action = repro.ActionEstablish
		}
	}
	baseSet, err := repro.NewRuleSet(base)
	if err != nil {
		t.Fatal(err)
	}
	var swapped []repro.Rule
	for i, r := range rs.Rules() {
		if i%4 == 0 {
			continue
		}
		if i%3 == 1 {
			r.Action = repro.ActionEstablish
		}
		swapped = append(swapped, r)
	}
	swapSet, err := repro.NewRuleSet(swapped)
	if err != nil {
		t.Fatal(err)
	}
	return baseSet, swapSet
}

// bidirSchedule interleaves forward packets, their reverse-direction
// replies and revisits of earlier flows — the shape that exercises
// install-then-accept, state-before-classifier and re-establishment.
func bidirSchedule(t *testing.T, rs *repro.RuleSet, n int, seed int64) []repro.Header {
	t.Helper()
	fwd := corpusTrace(t, rs, n, seed)
	rnd := rand.New(rand.NewSource(seed + 1))
	var sched []repro.Header
	for i, h := range fwd {
		sched = append(sched, h, reverseHeader(h))
		if i > 0 && rnd.Intn(3) == 0 {
			past := fwd[rnd.Intn(i)]
			if rnd.Intn(2) == 0 {
				past = reverseHeader(past)
			}
			sched = append(sched, past)
		}
	}
	return sched
}

// stateComposition describes one engine option stack for the
// differential matrix.
type stateComposition struct {
	name     string
	opts     []repro.Option
	stateful bool
	preserve bool
}

// stateCompositions is the matrix of satellite compositions: the
// stateless ones prove ActionEstablish degrades to a plain permit
// without the state layer, the stateful ones prove the conntrack
// semantics.
func stateCompositions() []stateComposition {
	return []stateComposition{
		{name: "plain"},
		{name: "shards4", opts: []repro.Option{repro.WithShards(4)}},
		{name: "cache", opts: []repro.Option{repro.WithFlowCache(1024)}},
		// The oracle's map never evicts, so the engine's direct-mapped
		// table is sized well above the live-flow count; the tests assert
		// zero evictions so a slot collision fails loudly instead of
		// surfacing as a baffling verdict mismatch.
		{name: "state", opts: []repro.Option{repro.WithFlowState(1<<14, 0)}, stateful: true},
		{name: "cache+state", opts: []repro.Option{repro.WithFlowCache(1024), repro.WithFlowState(1<<14, 0)}, stateful: true},
	}
}

// replayDifferential drives one engine and the oracle through the
// schedule in lockstep, with a whole-ruleset Replace at the midpoint.
func replayDifferential(t *testing.T, eng repro.Engine, o *conntrackOracle, sched []repro.Header, swap *repro.RuleSet) {
	t.Helper()
	mid := len(sched) / 2
	for i, h := range sched {
		if swap != nil && i == mid {
			if _, err := eng.Replace(swap.Rules()); err != nil {
				t.Fatalf("event %d: Replace: %v", i, err)
			}
			o.replace(swap)
		}
		res, _ := eng.Lookup(h)
		if got, want := verdictOf(res), o.lookup(h); got != want {
			t.Fatalf("event %d %+v: engine %+v, oracle %+v", i, h, got, want)
		}
	}
}

// TestFlowStateDifferential replays bidirectional schedules — including
// a mid-replay ruleset swap — on every backend × composition against
// the naive conntrack oracle.
func TestFlowStateDifferential(t *testing.T) {
	base, swap := establishingCorpus(t)
	sched := bidirSchedule(t, base, 150, 62)
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for _, c := range stateCompositions() {
				c := c
				t.Run(c.name, func(t *testing.T) {
					eng, err := repro.New(append([]repro.Option{
						repro.WithBackend(b), repro.WithRules(base),
					}, c.opts...)...)
					if err != nil {
						t.Fatal(err)
					}
					o := newConntrackOracle(base, c.stateful, false)
					replayDifferential(t, eng, o, sched, swap)
					if c.stateful {
						st := eng.(interface{ StateStats() repro.FlowStateStats }).StateStats()
						if st.Evictions != 0 {
							t.Fatalf("state table evicted %d entries; grow it so the oracle comparison stays exact", st.Evictions)
						}
						if st.Installs == 0 || st.Hits == 0 {
							t.Fatalf("schedule never exercised the state table: %+v", st)
						}
					}
				})
			}
		})
	}
}

// TestFlowStateEstablishSemantics pins the establish contract on the
// default composition: a forward hit on an allow-established rule
// installs a flow entry, the reverse direction is accepted by state
// with the establishing rule's verdict even though the classifier would
// deny it, and non-establishing verdicts install nothing.
func TestFlowStateEstablishSemantics(t *testing.T) {
	rules := []repro.Rule{
		{
			ID: 1, Priority: 1,
			SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(443),
			Proto: repro.ExactProto(repro.ProtoTCP), Action: repro.ActionEstablish,
		},
		{
			ID: 2, Priority: 2,
			SrcIP:   repro.MustParsePrefix("10.0.0.0/8"),
			SrcPort: repro.FullPortRange(), DstPort: repro.ExactPort(80),
			Proto: repro.ExactProto(repro.ProtoTCP), Action: repro.ActionPermit,
		},
		{ // catch-all deny: what the classifier says about reply traffic
			ID: 3, Priority: 9,
			SrcPort: repro.FullPortRange(), DstPort: repro.FullPortRange(),
			Proto: repro.AnyProto(), Action: repro.ActionDeny,
		},
	}
	rs, err := repro.NewRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithRules(rs), repro.WithFlowState(1024, 0))
	if err != nil {
		t.Fatal(err)
	}
	stateful := eng.(interface{ StateStats() repro.FlowStateStats })

	est := repro.Header{SrcIP: 0x0a000001, DstIP: 0x08080808, SrcPort: 40000, DstPort: 443, Proto: repro.ProtoTCP}
	res, _ := eng.Lookup(est)
	if !res.Found || res.RuleID != 1 || res.Action != repro.ActionEstablish {
		t.Fatalf("forward establish lookup: %+v", res)
	}
	rev, _ := eng.Lookup(reverseHeader(est))
	if !rev.Found || rev.RuleID != 1 || rev.Action != repro.ActionEstablish {
		t.Fatalf("reverse lookup should be accepted by state with the establishing verdict, got %+v", rev)
	}

	// A permit verdict installs nothing: the reply hits the deny rule.
	web := repro.Header{SrcIP: 0x0a000002, DstIP: 0x08080808, SrcPort: 40001, DstPort: 80, Proto: repro.ProtoTCP}
	if res, _ := eng.Lookup(web); !res.Found || res.RuleID != 2 {
		t.Fatalf("permit lookup: %+v", res)
	}
	if res, _ := eng.Lookup(reverseHeader(web)); !res.Found || res.RuleID != 3 || res.Action != repro.ActionDeny {
		t.Fatalf("reverse of a non-establishing flow must reach the classifier, got %+v", res)
	}

	// An unrelated reply-shaped packet is not covered by the installed
	// entry either.
	other := repro.Header{SrcIP: 0x08080808, DstIP: 0x0a000003, SrcPort: 443, DstPort: 40002, Proto: repro.ProtoTCP}
	if res, _ := eng.Lookup(other); !res.Found || res.RuleID != 3 {
		t.Fatalf("unrelated reply flow: %+v", res)
	}

	st := stateful.StateStats()
	if st.Installs != 1 || st.Hits == 0 {
		t.Fatalf("state counters: %+v", st)
	}

	// The batch path agrees with the single-lookup path on a
	// state-served schedule, and the raw-bytes path does too.
	batch := eng.LookupBatch([]repro.Header{est, reverseHeader(est), web, reverseHeader(web)})
	want := []verdict{
		{true, 1, repro.ActionEstablish},
		{true, 1, repro.ActionEstablish},
		{true, 2, repro.ActionPermit},
		{true, 3, repro.ActionDeny},
	}
	for i, res := range batch {
		if verdictOf(res) != want[i] {
			t.Fatalf("batch[%d] = %+v, want %+v", i, verdictOf(res), want[i])
		}
	}
	frames := framesFor([]repro.Header{reverseHeader(est)})
	raw, err := eng.LookupBytes(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	if verdictOf(raw) != want[1] {
		t.Fatalf("LookupBytes reverse = %+v, want %+v", verdictOf(raw), want[1])
	}
	out := make([]repro.Result, 1)
	if n := eng.LookupBytesBatch(frames, out); n != 1 || verdictOf(out[0]) != want[1] {
		t.Fatalf("LookupBytesBatch reverse = %+v (n=%d), want %+v", verdictOf(out[0]), n, want[1])
	}
}

// TestFlowStateSwapInvalidates proves a ruleset swap clears established
// state by default: the reply that was accepted by state before the
// Replace reaches the classifier after it.
func TestFlowStateSwapInvalidates(t *testing.T) {
	base, _ := establishingCorpus(t)
	eng, err := repro.New(repro.WithRules(base), repro.WithFlowState(1024, 0))
	if err != nil {
		t.Fatal(err)
	}
	o := newConntrackOracle(base, true, false)
	sched := bidirSchedule(t, base, 40, 63)
	replayDifferential(t, eng, o, sched, nil)

	st := eng.(interface{ StateStats() repro.FlowStateStats })
	before := st.StateStats()
	if before.Installs == 0 {
		t.Fatal("schedule installed no state")
	}
	if _, err := eng.Replace(base.Rules()); err != nil {
		t.Fatal(err)
	}
	o.replace(base)
	after := st.StateStats()
	if after.Invalidations != before.Invalidations+1 {
		t.Fatalf("Replace should invalidate once: before %+v, after %+v", before, after)
	}
	// Replaying the same schedule must agree with the cleared oracle:
	// every established flow re-traverses the classifier first.
	replayDifferential(t, eng, o, sched, nil)
}

// TestFlowStatePreserveAcrossSwap proves WithFlowStatePreserve keeps
// established flows across a Replace: the state-accepted reply is still
// state-accepted afterwards, even when the new ruleset would deny it.
func TestFlowStatePreserveAcrossSwap(t *testing.T) {
	base, swap := establishingCorpus(t)
	eng, err := repro.New(repro.WithRules(base), repro.WithFlowState(1<<14, 0), repro.WithFlowStatePreserve())
	if err != nil {
		t.Fatal(err)
	}
	o := newConntrackOracle(base, true, true)
	sched := bidirSchedule(t, base, 60, 64)
	replayDifferential(t, eng, o, sched, nil)

	st := eng.(interface{ StateStats() repro.FlowStateStats })
	before := st.StateStats()
	if before.Installs == 0 {
		t.Fatal("schedule installed no state")
	}
	if _, err := eng.Replace(swap.Rules()); err != nil {
		t.Fatal(err)
	}
	o.replace(swap)
	if after := st.StateStats(); after.Invalidations != before.Invalidations {
		t.Fatalf("preserving engine must not invalidate on Replace: before %+v, after %+v", before, after)
	}
	// The replay after the swap still agrees with the oracle, whose map
	// was preserved too — established flows keep their old verdicts.
	replayDifferential(t, eng, o, sched, nil)
	if after := st.StateStats(); after.Evictions != 0 {
		t.Fatalf("state table evicted %d entries; grow it so the oracle comparison stays exact", after.Evictions)
	}
}

// TestFlowStateChurn hammers a stateful composition with concurrent
// bidirectional lookups while the writer swaps the whole ruleset back
// and forth — the -race gate for the state layer's lock-free
// publication and generation invalidation.
func TestFlowStateChurn(t *testing.T) {
	base, swap := establishingCorpus(t)
	sched := bidirSchedule(t, base, 60, 65)
	for _, b := range []repro.Backend{repro.BackendDecomposition, repro.BackendTSS} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(
				repro.WithBackend(b), repro.WithRules(base),
				repro.WithFlowCache(512), repro.WithFlowState(4096, 0),
			)
			if err != nil {
				t.Fatal(err)
			}
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(int64(700 + w)))
					out := make([]repro.Result, 8)
					for !stop.Load() {
						h := sched[rnd.Intn(len(sched))]
						res, _ := eng.Lookup(h)
						if res.Found && res.RuleID == 0 {
							t.Error("found verdict with zero rule ID")
							return
						}
						eng.LookupBatchInto(sched[:8], out)
					}
				}()
			}
			for i := 0; i < 40; i++ {
				next := swap
				if i%2 == 1 {
					next = base
				}
				if _, err := eng.Replace(next.Rules()); err != nil {
					t.Errorf("replace %d: %v", i, err)
					break
				}
			}
			stop.Store(true)
			wg.Wait()
			st := eng.(interface{ StateStats() repro.FlowStateStats }).StateStats()
			if st.Invalidations != 40 {
				t.Fatalf("want 40 invalidations, got %+v", st)
			}
		})
	}
}
