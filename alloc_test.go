package repro_test

import (
	"strings"
	"testing"

	repro "repro"
)

// TestEngineLookupZeroAllocs guards the full public fast path: a
// single-header Lookup on the decomposition backend — RCU snapshot
// acquire, five field-engine searches into pooled label buffers, the
// iterative ULI walk over the flat Rule Filter — must not allocate once
// the pooled buffers are warm.
func TestEngineLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 128, HitRatio: 0.9, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithRules(rs))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		eng.Lookup(h)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		eng.Lookup(trace[i%len(trace)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Lookup allocates %.1f objects/op on the steady-state path, want 0", allocs)
	}

	// The stateful probe path: with every rule establishing, the warmed
	// state table serves both directions from its lock-free probe, which
	// must also stay off the heap.
	est := establishingSet(t, rs)
	seng, err := repro.New(repro.WithRules(est), repro.WithFlowState(8192, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		seng.Lookup(h)
		seng.Lookup(reverseHeader(h))
	}
	i = 0
	allocs = testing.AllocsPerRun(500, func() {
		h := trace[i%len(trace)]
		seng.Lookup(h)
		seng.Lookup(reverseHeader(h))
		i++
	})
	if allocs != 0 {
		t.Errorf("stateful Lookup allocates %.1f objects/op on the steady-state path, want 0", allocs)
	}
}

// establishingSet rewrites every rule's action to allow-established so a
// warmed trace turns the whole state table hot.
func establishingSet(t *testing.T, rs *repro.RuleSet) *repro.RuleSet {
	t.Helper()
	rules := rs.Rules()
	for i := range rules {
		rules[i].Action = repro.ActionEstablish
	}
	est, err := repro.NewRuleSet(rules)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

// reverseHeader swaps the header's endpoints — the reply direction of
// the same flow.
func reverseHeader(h repro.Header) repro.Header {
	return repro.Header{
		SrcIP: h.DstIP, DstIP: h.SrcIP,
		SrcPort: h.DstPort, DstPort: h.SrcPort, Proto: h.Proto,
	}
}

// TestEngineLookupBatchIntoZeroAllocs guards the batched fast path on
// every composition the Engine options can assemble: plain
// decomposition (the stage-fused burst kernel), the flow cache's pooled
// miss compaction, the shard layer's pooled column merge, and the two
// stacked. Once the pools are warm and the cache is filled, a
// LookupBatchInto into caller-owned memory must not allocate.
func TestEngineLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 64, HitRatio: 0.9, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	est := establishingSet(t, rs)
	compositions := []struct {
		name string
		opts []repro.Option
	}{
		{"plain", nil},
		{"cache", []repro.Option{repro.WithFlowCache(4096)}},
		{"shards4", []repro.Option{repro.WithShards(4)}},
		{"shards4+cache", []repro.Option{repro.WithShards(4), repro.WithFlowCache(4096)}},
		// The state table is direct-mapped, so the guard sizes it such
		// that the fixed-seed trace's flow keys occupy distinct slots —
		// a slot collision would ping-pong one install (an entry
		// allocation) per batch, which is the install path's cost, not
		// the steady-state probe path this test pins down.
		{"state", []repro.Option{repro.WithFlowState(8192, 0)}},
		{"cache+state", []repro.Option{repro.WithFlowCache(4096), repro.WithFlowState(8192, 0)}},
	}
	for _, c := range compositions {
		t.Run(c.name, func(t *testing.T) {
			// State compositions run against the all-establishing ruleset
			// so the warm-up actually fills the state table.
			rules := rs
			if strings.Contains(c.name, "state") {
				rules = est
			}
			eng, err := repro.New(append([]repro.Option{repro.WithRules(rules)}, c.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]repro.Result, len(trace))
			// Warm the scratch pools and fill the flow cache.
			eng.LookupBatchInto(trace, out)
			eng.LookupBatchInto(trace, out)
			allocs := testing.AllocsPerRun(200, func() {
				eng.LookupBatchInto(trace, out)
			})
			if allocs != 0 {
				t.Errorf("%s: LookupBatchInto allocates %.1f objects/batch steady state, want 0", c.name, allocs)
			}
			if !out[0].Found && !out[1].Found {
				t.Fatal("trace should mostly hit")
			}
		})
	}
}
