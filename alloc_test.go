package repro_test

import (
	"testing"

	repro "repro"
)

// TestEngineLookupZeroAllocs guards the full public fast path: a
// single-header Lookup on the decomposition backend — RCU snapshot
// acquire, five field-engine searches into pooled label buffers, the
// iterative ULI walk over the flat Rule Filter — must not allocate once
// the pooled buffers are warm.
func TestEngineLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 128, HitRatio: 0.9, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithRules(rs))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		eng.Lookup(h)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		eng.Lookup(trace[i%len(trace)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Lookup allocates %.1f objects/op on the steady-state path, want 0", allocs)
	}
}
