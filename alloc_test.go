package repro_test

import (
	"testing"

	repro "repro"
)

// TestEngineLookupZeroAllocs guards the full public fast path: a
// single-header Lookup on the decomposition backend — RCU snapshot
// acquire, five field-engine searches into pooled label buffers, the
// iterative ULI walk over the flat Rule Filter — must not allocate once
// the pooled buffers are warm.
func TestEngineLookupZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 128, HitRatio: 0.9, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithRules(rs))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range trace {
		eng.Lookup(h)
	}
	i := 0
	allocs := testing.AllocsPerRun(500, func() {
		eng.Lookup(trace[i%len(trace)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Engine.Lookup allocates %.1f objects/op on the steady-state path, want 0", allocs)
	}
}

// TestEngineLookupBatchIntoZeroAllocs guards the batched fast path on
// every composition the Engine options can assemble: plain
// decomposition (the stage-fused burst kernel), the flow cache's pooled
// miss compaction, the shard layer's pooled column merge, and the two
// stacked. Once the pools are warm and the cache is filled, a
// LookupBatchInto into caller-owned memory must not allocate.
func TestEngineLookupBatchIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc guard runs in non-race CI step")
	}
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := repro.GenerateTrace(rs, repro.TraceConfig{Size: 64, HitRatio: 0.9, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	compositions := []struct {
		name string
		opts []repro.Option
	}{
		{"plain", nil},
		{"cache", []repro.Option{repro.WithFlowCache(4096)}},
		{"shards4", []repro.Option{repro.WithShards(4)}},
		{"shards4+cache", []repro.Option{repro.WithShards(4), repro.WithFlowCache(4096)}},
	}
	for _, c := range compositions {
		t.Run(c.name, func(t *testing.T) {
			eng, err := repro.New(append([]repro.Option{repro.WithRules(rs)}, c.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			out := make([]repro.Result, len(trace))
			// Warm the scratch pools and fill the flow cache.
			eng.LookupBatchInto(trace, out)
			eng.LookupBatchInto(trace, out)
			allocs := testing.AllocsPerRun(200, func() {
				eng.LookupBatchInto(trace, out)
			})
			if allocs != 0 {
				t.Errorf("%s: LookupBatchInto allocates %.1f objects/batch steady state, want 0", c.name, allocs)
			}
			if !out[0].Found && !out[1].Found {
				t.Fatal("trace should mostly hit")
			}
		})
	}
}
