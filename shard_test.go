package repro_test

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	repro "repro"
)

// TestShardedConformanceDifferential is the sharded counterpart of the
// engine conformance suite: every backend behind WithShards(4) must
// agree with the linear oracle on the full corpus — the acceptance gate
// for the shard wrapper.
func TestShardedConformanceDifferential(t *testing.T) {
	corpus := conformanceCorpus(t)
	for _, b := range repro.Backends() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			for name, rs := range corpus {
				eng, err := repro.New(repro.WithBackend(b), repro.WithRules(rs), repro.WithShards(4))
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				if eng.Backend() != b {
					t.Fatalf("Backend() = %v, want %v", eng.Backend(), b)
				}
				if eng.Len() != rs.Len() {
					t.Fatalf("%s: Len = %d, want %d", name, eng.Len(), rs.Len())
				}
				if eng.Memory().TotalBytes() < 0 {
					t.Fatalf("%s: negative memory", name)
				}
				checkAgainstOracle(t, eng, rs, corpusTrace(t, rs, 300, 104))
			}
		})
	}
}

// TestShardedIncremental drives sharded engines through the incremental
// insert/delete schedule, differential-checking along the way: updates
// must land on the hashed replica and deletes must find them there.
func TestShardedIncremental(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.FW, Size: 80, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rules := rs.Rules()
	trace := corpusTrace(t, rs, 150, 105)
	for _, b := range []repro.Backend{repro.BackendDecomposition, repro.BackendLinear, repro.BackendTSS, repro.BackendRFC} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(repro.WithBackend(b), repro.WithShards(3))
			if err != nil {
				t.Fatal(err)
			}
			live := make([]repro.Rule, 0, len(rules))
			oracle := func() *repro.RuleSet {
				s, err := repro.NewRuleSet(append([]repro.Rule(nil), live...))
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			for i, r := range rules {
				cost, err := eng.Insert(r)
				if err != nil {
					t.Fatalf("insert %d: %v", r.ID, err)
				}
				if cost.Cycles <= 0 {
					t.Fatalf("insert %d: non-positive cycle cost %+v", r.ID, cost)
				}
				live = append(live, r)
				if i%25 == 24 {
					checkAgainstOracle(t, eng, oracle(), trace)
				}
			}
			if _, err := eng.Insert(rules[0]); err == nil {
				t.Fatal("duplicate insert should fail")
			}
			for i := 0; i < len(rules); i += 2 {
				if _, err := eng.Delete(rules[i].ID); err != nil {
					t.Fatalf("delete %d: %v", rules[i].ID, err)
				}
			}
			kept := live[:0]
			for i, r := range live {
				if i%2 == 1 {
					kept = append(kept, r)
				}
			}
			live = kept
			if eng.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(live))
			}
			checkAgainstOracle(t, eng, oracle(), trace)
			if _, err := eng.Delete(-12345); err == nil {
				t.Fatal("delete of unknown rule should fail")
			}
		})
	}
}

// TestShardedOptions pins the option contract: invalid shard counts are
// rejected, one shard builds the backend unwrapped, and the IPv6 domain
// refuses sharding.
func TestShardedOptions(t *testing.T) {
	for _, n := range []int{0, -3} {
		if _, err := repro.New(repro.WithShards(n)); err == nil {
			t.Errorf("WithShards(%d) should fail", n)
		}
	}
	eng, err := repro.New(repro.WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, isClassifier := eng.(*repro.Classifier); !isClassifier {
		t.Errorf("WithShards(1) should build the unwrapped backend, got %T", eng)
	}
	if _, err := repro.New6(repro.WithShards(2)); err == nil {
		t.Error("New6 with shards should fail")
	}
	if _, err := repro.New6(repro.WithShards(1)); err != nil {
		t.Errorf("New6 with one shard: %v", err)
	}
}

// TestShardedAggregates verifies the cross-replica reporting: stats sum
// to the full population, memory maps carry per-shard blocks, and the
// decomposition wrapper models aggregate throughput.
func TestShardedAggregates(t *testing.T) {
	rs, err := repro.GenerateRules(repro.GenConfig{Family: repro.ACL, Size: 100, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := repro.New(repro.WithRules(rs), repro.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	trace := corpusTrace(t, rs, 200, 106)
	eng.LookupBatch(trace)

	st, ok := eng.(interface{ Stats() repro.Stats })
	if !ok {
		t.Fatal("sharded decomposition engine must expose Stats")
	}
	stats := st.Stats()
	if stats.Rules != rs.Len() {
		t.Errorf("Stats.Rules = %d, want %d", stats.Rules, rs.Len())
	}
	if stats.ProbeOps <= 0 {
		t.Errorf("Stats.ProbeOps = %d after %d lookups", stats.ProbeOps, len(trace))
	}

	tp, ok := eng.(interface{ ModelThroughput() repro.Throughput })
	if !ok {
		t.Fatal("sharded decomposition engine must expose ModelThroughput")
	}
	if got := tp.ModelThroughput(); got.Mpps <= 0 || got.Gbps <= 0 {
		t.Errorf("ModelThroughput = %+v", got)
	}

	mm := eng.Memory()
	if mm.TotalBytes() <= 0 {
		t.Errorf("Memory = %d B", mm.TotalBytes())
	}
	shardsSeen := map[string]bool{}
	for _, blk := range mm.Blocks {
		if i := strings.IndexByte(blk.Name, '/'); i > 0 {
			shardsSeen[blk.Name[:i]] = true
		}
	}
	if len(shardsSeen) != 4 {
		t.Errorf("memory map names %d shards, want 4: %v", len(shardsSeen), shardsSeen)
	}

	// A sharded baseline backend has no hardware model but must still
	// report rules through the stats fallback.
	lin, err := repro.New(repro.WithBackend(repro.BackendLinear), repro.WithRules(rs), repro.WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lin.(interface{ ModelThroughput() repro.Throughput }); ok {
		t.Error("sharded baseline should not claim a throughput model")
	}
	lst, ok := lin.(interface{ Stats() repro.Stats })
	if !ok {
		t.Fatal("sharded baseline must expose aggregate stats")
	}
	if got := lst.Stats().Rules; got != rs.Len() {
		t.Errorf("sharded baseline Stats.Rules = %d, want %d", got, rs.Len())
	}
}

// TestShardedConcurrentChurn hammers a sharded engine with parallel
// batched lookups during rule churn — the -race gate for the sharded
// read path on top of the per-replica RCU snapshots.
func TestShardedConcurrentChurn(t *testing.T) {
	pool, err := repro.GenerateRules(repro.GenConfig{Family: repro.IPC, Size: 60, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	rules := pool.Rules()
	trace := corpusTrace(t, pool, 64, 107)
	for _, b := range []repro.Backend{repro.BackendDecomposition, repro.BackendTSS} {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			eng, err := repro.New(repro.WithBackend(b), repro.WithShards(4))
			if err != nil {
				t.Fatal(err)
			}
			var stop atomic.Bool
			var lookups atomic.Int64
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rnd := rand.New(rand.NewSource(int64(600 + w)))
					for !stop.Load() {
						h := trace[rnd.Intn(len(trace))]
						res, _ := eng.Lookup(h)
						if res.Found && res.RuleID == 0 {
							t.Error("found result with zero rule ID")
							return
						}
						_ = eng.LookupBatch(trace[:16])
						lookups.Add(17)
					}
				}()
			}
			rnd := rand.New(rand.NewSource(45))
			live := make([]int, 0, len(rules))
			next := 0
			for op := 0; op < 150; op++ {
				if next < len(rules) && (len(live) == 0 || rnd.Intn(3) > 0) {
					if _, err := eng.Insert(rules[next]); err != nil {
						t.Fatalf("op %d insert: %v", op, err)
					}
					live = append(live, rules[next].ID)
					next++
					continue
				}
				if len(live) == 0 {
					break
				}
				i := rnd.Intn(len(live))
				if _, err := eng.Delete(live[i]); err != nil {
					t.Fatalf("op %d delete: %v", op, err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			for lookups.Load() == 0 {
				runtime.Gosched()
			}
			stop.Store(true)
			wg.Wait()
			if eng.Len() != len(live) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(live))
			}
		})
	}
}
